//! Thread-local heap-allocation tally for the zero-allocation benchmarks.
//!
//! The counters only move when the replacement global operator new/delete
//! in src/support/alloc_hooks.cpp is linked into the binary — the benches
//! and the alloc-counter test opt in; the library itself never replaces
//! global new, so embedders are unaffected.  hooks_linked() reports whether
//! the hooks registered, letting callers print "n/a" instead of a silent 0.
//!
//! Ownership: the tallies are per-thread statics; there is nothing to own.
//! Thread-safety: every counter is thread-local — a Scope only sees the
//! allocations of the thread that created it (which is exactly what the
//! per-worker steady-state measurements want).
//! Determinism: counting is observation only; linking the hooks cannot
//! change any program result, just the tally.
#pragma once

#include <cstddef>
#include <cstdint>

namespace loom::support {

class AllocCounter {
 public:
  struct Totals {
    std::uint64_t allocs = 0;  // operator new / new[] calls
    std::uint64_t frees = 0;   // operator delete / delete[] calls
    std::uint64_t bytes = 0;   // bytes requested from operator new
  };

  /// This thread's tally since thread start (all zero without the hooks).
  static Totals totals() noexcept;

  /// Entry points for the replacement operators in alloc_hooks.cpp.
  static void note_alloc(std::size_t bytes) noexcept;
  static void note_free() noexcept;

  /// True when alloc_hooks.cpp was linked into this binary.
  static bool hooks_linked() noexcept;
  static void mark_hooks_linked() noexcept;

  /// RAII window: the calling thread's allocations since construction.
  class Scope {
   public:
    Scope() noexcept : start_(totals()) {}
    std::uint64_t allocs() const noexcept {
      return totals().allocs - start_.allocs;
    }
    std::uint64_t frees() const noexcept {
      return totals().frees - start_.frees;
    }
    std::uint64_t bytes() const noexcept {
      return totals().bytes - start_.bytes;
    }

   private:
    Totals start_;
  };
};

}  // namespace loom::support

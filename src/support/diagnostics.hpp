// Diagnostics: source positions for the property parser and structured
// error reporting shared by the parser, the well-formedness checker and the
// monitors.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace loom::support {

// Debug-only invariant checks (compiled out under NDEBUG): prints the
// failing expression with its location and aborts.  Used for the internal
// invariants of the thread pool and the shard-merge paths, where a silent
// inconsistency would surface as nondeterminism far from its cause.
#ifndef NDEBUG
[[noreturn]] void debug_assert_fail(const char* file, int line,
                                    const char* expr);
#define LOOM_DASSERT(expr)                                           \
  do {                                                               \
    if (!(expr)) {                                                   \
      ::loom::support::debug_assert_fail(__FILE__, __LINE__, #expr); \
    }                                                                \
  } while (false)
#else
#define LOOM_DASSERT(expr) static_cast<void>(0)
#endif

/// 1-based position inside a property source string.
struct SourcePos {
  std::size_t line = 1;
  std::size_t column = 1;

  bool operator==(const SourcePos&) const = default;
};

enum class Severity { Note, Warning, Error };

struct Diagnostic {
  Severity severity = Severity::Error;
  SourcePos pos;
  std::string message;

  std::string to_string() const;
};

/// Collects diagnostics; the common pattern is to pass one collector through
/// a whole analysis and test `ok()` at the end.
class DiagnosticSink {
 public:
  void error(SourcePos pos, std::string message);
  void warning(SourcePos pos, std::string message);
  void note(SourcePos pos, std::string message);

  bool ok() const { return error_count_ == 0; }
  std::size_t error_count() const { return error_count_; }
  const std::vector<Diagnostic>& all() const { return diags_; }

  /// All diagnostics joined with newlines; empty when there are none.
  std::string to_string() const;

 private:
  std::vector<Diagnostic> diags_;
  std::size_t error_count_ = 0;
};

}  // namespace loom::support

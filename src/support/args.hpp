// Tiny positional-argument parsing shared by the bench / example mains.
#pragma once

#include <cstddef>
#include <cstdlib>

namespace loom::support {

/// Parses argv[index] as a positive count; anything that is not a plain
/// positive decimal number (garbage, zero, negative, trailing junk, or a
/// missing argument) yields `fallback`, so a sweep can never silently run
/// with a nonsense parameter.
inline std::size_t parse_count(int argc, char** argv, int index,
                               std::size_t fallback) {
  if (argc <= index) return fallback;
  const char* text = argv[index];
  if (text == nullptr || *text == '\0' || *text == '-') return fallback;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text, &end, 10);
  if (end == nullptr || *end != '\0' || value == 0) return fallback;
  return static_cast<std::size_t>(value);
}

}  // namespace loom::support

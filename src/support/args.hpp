// Tiny positional-argument and flag-value parsing shared by the bench /
// example mains.
#pragma once

#include <cerrno>
#include <cstddef>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <optional>

namespace loom::support {

/// Parses argv[index] as a positive count; anything that is not a plain
/// positive decimal number (garbage, zero, negative, trailing junk, or a
/// missing argument) yields `fallback`, so a sweep can never silently run
/// with a nonsense parameter.
inline std::size_t parse_count(int argc, char** argv, int index,
                               std::size_t fallback) {
  if (argc <= index) return fallback;
  const char* text = argv[index];
  if (text == nullptr || *text == '\0' || *text == '-') return fallback;
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text, &end, 10);
  if (errno == ERANGE || end == nullptr || *end != '\0' || value == 0 ||
      value > std::numeric_limits<std::size_t>::max()) {
    return fallback;
  }
  return static_cast<std::size_t>(value);
}

/// Parses a strictly positive decimal count from a flag value
/// ("--checkpoint-stride=N"); nullopt on garbage, zero, empty, overflow or
/// any non-digit character (no "+", no whitespace) — unlike parse_count
/// there is no fallback, so tools can reject bad values with a usage error
/// instead of silently substituting.
inline std::optional<std::size_t> parse_positive(const char* text) {
  if (text == nullptr || *text == '\0') return std::nullopt;
  for (const char* c = text; *c != '\0'; ++c) {
    if (*c < '0' || *c > '9') return std::nullopt;
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text, &end, 10);
  if (errno == ERANGE || end == nullptr || *end != '\0' || value == 0 ||
      value > std::numeric_limits<std::size_t>::max()) {
    return std::nullopt;
  }
  return static_cast<std::size_t>(value);
}

/// Parses the exact spellings "on" / "off" ("--incremental=on"); nullopt on
/// anything else.
inline std::optional<bool> parse_on_off(const char* text) {
  if (text == nullptr) return std::nullopt;
  if (std::strcmp(text, "on") == 0) return true;
  if (std::strcmp(text, "off") == 0) return false;
  return std::nullopt;
}

}  // namespace loom::support

// Tiny positional-argument and flag-value parsing shared by the bench /
// example mains.  All numeric parsing is full-match std::from_chars:
// trailing garbage ("5x"), signs ("+5", "-1"), whitespace (" 5") and
// 64-bit overflow ("99999999999999999999") are rejected outright, never
// truncated or silently substituted — the callers turn the rejection into
// a usage error (exit 2).
#pragma once

#include <charconv>
#include <cstddef>
#include <cstring>
#include <limits>
#include <optional>
#include <system_error>

namespace loom::support {

/// Parses a strictly positive decimal count ("--checkpoint-stride=N",
/// "--threads=N"); nullopt on garbage, zero, empty, sign, whitespace,
/// trailing junk or anything that overflows std::size_t, so tools reject
/// bad values with a usage error instead of truncating them.
inline std::optional<std::size_t> parse_positive(const char* text) {
  if (text == nullptr || *text == '\0') return std::nullopt;
  const char* const last = text + std::strlen(text);
  unsigned long long value = 0;
  const auto [ptr, ec] = std::from_chars(text, last, value, 10);
  if (ec != std::errc() || ptr != last) return std::nullopt;
  if (value == 0 || value > std::numeric_limits<std::size_t>::max()) {
    return std::nullopt;
  }
  return static_cast<std::size_t>(value);
}

/// Parses a non-negative decimal count ("--worker-timeout-ms=N",
/// "--worker-retries=N" — knobs where 0 is a legal value meaning "off").
/// Same strictness as parse_positive otherwise: nullopt on garbage, sign,
/// whitespace, trailing junk or overflow.
inline std::optional<std::size_t> parse_nonneg(const char* text) {
  if (text == nullptr || *text == '\0') return std::nullopt;
  const char* const last = text + std::strlen(text);
  unsigned long long value = 0;
  const auto [ptr, ec] = std::from_chars(text, last, value, 10);
  if (ec != std::errc() || ptr != last) return std::nullopt;
  if (value > std::numeric_limits<std::size_t>::max()) return std::nullopt;
  return static_cast<std::size_t>(value);
}

/// Parses argv[index] as a positive count.  A missing argument yields the
/// fallback (positionals are optional); an argument that is present but
/// not a plain positive decimal number yields nullopt, so the caller can
/// exit with a usage error instead of silently running a sweep with a
/// nonsense parameter.
inline std::optional<std::size_t> parse_count(int argc, char** argv, int index,
                                              std::size_t fallback) {
  if (argc <= index || argv[index] == nullptr) return fallback;
  return parse_positive(argv[index]);
}

/// Parses the exact spellings "on" / "off" ("--incremental=on"); nullopt on
/// anything else (case-sensitive, no surrounding whitespace).
inline std::optional<bool> parse_on_off(const char* text) {
  if (text == nullptr) return std::nullopt;
  if (std::strcmp(text, "on") == 0) return true;
  if (std::strcmp(text, "off") == 0) return false;
  return std::nullopt;
}

}  // namespace loom::support

// Work-stealing thread pool backing the parallel ABV campaign engine.
//
// One deque per worker: submit() round-robins tasks across the deques, a
// worker pops from the back of its own deque (LIFO, cache-warm) and steals
// from the front of a sibling's (FIFO, oldest first) when its own runs dry.
// The amount of queued-but-unstarted work is bounded by `queue_capacity`;
// submit() blocks when the pool is saturated, giving producers back-pressure
// instead of unbounded memory growth.  The first exception thrown by any
// task is captured and re-thrown from wait_idle() on the calling thread, so
// a failing shard aborts a campaign instead of vanishing on a worker.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <condition_variable>
#include <exception>
#include <thread>
#include <vector>

#include "support/diagnostics.hpp"

namespace loom::support {

class ThreadPool {
 public:
  using Task = std::function<void()>;

  /// Spawns `threads` workers (0 is promoted to 1); at most
  /// `queue_capacity` tasks may sit unstarted across all deques.
  explicit ThreadPool(std::size_t threads, std::size_t queue_capacity = 4096);

  /// Drains every queued task, joins the workers.  An exception captured
  /// but never collected through wait_idle() is dropped here (destructors
  /// must not throw).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  /// Enqueues a task; blocks while the pool is saturated.
  void submit(Task task);

  /// Blocks until every submitted task has finished, then re-throws the
  /// first exception any of them raised (if one did).
  void wait_idle();

  /// Convenience fan-out: runs body(i) for every i in [0, n), blocking
  /// until all iterations finished (exceptions propagate like wait_idle).
  void for_each_index(std::size_t n,
                      const std::function<void(std::size_t)>& body);

 private:
  struct Queue {
    std::mutex mutex;
    std::deque<Task> tasks;
  };

  void worker_loop(std::size_t self);
  bool try_pop(std::size_t self, Task& out);

  std::vector<std::unique_ptr<Queue>> queues_;
  std::vector<std::thread> workers_;

  std::mutex sync_;                    // guards the counters below
  std::condition_variable work_cv_;    // queued_ went up / stopping
  std::condition_variable space_cv_;   // queued_ went down
  std::condition_variable idle_cv_;    // in_flight_ hit zero
  std::size_t capacity_ = 0;
  std::size_t queued_ = 0;             // submitted, not yet dequeued
  std::size_t in_flight_ = 0;          // submitted, not yet finished
  std::size_t next_queue_ = 0;         // round-robin submit cursor
  bool stopping_ = false;
  std::exception_ptr first_error_;
};

}  // namespace loom::support

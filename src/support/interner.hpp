// String interner: bidirectional mapping between names and dense ids.
//
// Interface event names (set_imgAddr, start, ...) are interned once so that
// monitors work on integer ids and Bitset name sets.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace loom::support {

class Interner {
 public:
  using Id = std::uint32_t;
  static constexpr Id kInvalid = static_cast<Id>(-1);

  /// Returns the id of `name`, creating a new one on first sight.
  Id intern(std::string_view name);

  /// Returns the id of `name` when already interned.
  std::optional<Id> lookup(std::string_view name) const;

  /// Returns the name for a valid id.
  const std::string& name(Id id) const { return names_.at(id); }

  std::size_t size() const { return names_.size(); }

 private:
  std::unordered_map<std::string, Id> ids_;
  std::vector<std::string> names_;
};

}  // namespace loom::support

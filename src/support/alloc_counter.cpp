#include "support/alloc_counter.hpp"

#include <atomic>

namespace loom::support {
namespace {

// Trivially-destructible per-thread tally: safe to touch from operator new
// during static initialization and thread shutdown alike.
thread_local AllocCounter::Totals t_totals;

std::atomic<bool> g_hooks_linked{false};

}  // namespace

AllocCounter::Totals AllocCounter::totals() noexcept { return t_totals; }

void AllocCounter::note_alloc(std::size_t bytes) noexcept {
  ++t_totals.allocs;
  t_totals.bytes += bytes;
}

void AllocCounter::note_free() noexcept { ++t_totals.frees; }

bool AllocCounter::hooks_linked() noexcept {
  return g_hooks_linked.load(std::memory_order_relaxed);
}

void AllocCounter::mark_hooks_linked() noexcept {
  g_hooks_linked.store(true, std::memory_order_relaxed);
}

}  // namespace loom::support

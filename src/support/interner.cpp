#include "support/interner.hpp"

namespace loom::support {

Interner::Id Interner::intern(std::string_view name) {
  auto it = ids_.find(std::string(name));
  if (it != ids_.end()) return it->second;
  const Id id = static_cast<Id>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(names_.back(), id);
  return id;
}

std::optional<Interner::Id> Interner::lookup(std::string_view name) const {
  auto it = ids_.find(std::string(name));
  if (it == ids_.end()) return std::nullopt;
  return it->second;
}

}  // namespace loom::support

#include "support/bitset.hpp"

#include <algorithm>
#include <bit>

namespace loom::support {

void Bitset::resize(std::size_t capacity) {
  const std::size_t words = (capacity + kBits - 1) / kBits;
  if (words > words_.size()) words_.resize(words, 0);
}

void Bitset::set(std::size_t i) {
  if (i >= capacity()) resize(i + 1);
  words_[i / kBits] |= std::uint64_t{1} << (i % kBits);
}

void Bitset::reset(std::size_t i) {
  if (i >= capacity()) return;
  words_[i / kBits] &= ~(std::uint64_t{1} << (i % kBits));
}

bool Bitset::test(std::size_t i) const {
  if (i >= capacity()) return false;
  return (words_[i / kBits] >> (i % kBits)) & 1u;
}

bool Bitset::empty() const {
  return std::all_of(words_.begin(), words_.end(),
                     [](std::uint64_t w) { return w == 0; });
}

std::size_t Bitset::count() const {
  std::size_t n = 0;
  for (std::uint64_t w : words_) n += static_cast<std::size_t>(std::popcount(w));
  return n;
}

void Bitset::clear() { std::fill(words_.begin(), words_.end(), 0); }

Bitset& Bitset::operator|=(const Bitset& other) {
  if (other.words_.size() > words_.size()) words_.resize(other.words_.size(), 0);
  for (std::size_t i = 0; i < other.words_.size(); ++i) words_[i] |= other.words_[i];
  return *this;
}

Bitset& Bitset::operator&=(const Bitset& other) {
  for (std::size_t i = 0; i < words_.size(); ++i) {
    words_[i] &= i < other.words_.size() ? other.words_[i] : 0;
  }
  return *this;
}

Bitset& Bitset::subtract(const Bitset& other) {
  const std::size_t n = std::min(words_.size(), other.words_.size());
  for (std::size_t i = 0; i < n; ++i) words_[i] &= ~other.words_[i];
  return *this;
}

bool Bitset::operator==(const Bitset& other) const {
  const std::size_t n = std::max(words_.size(), other.words_.size());
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t a = i < words_.size() ? words_[i] : 0;
    const std::uint64_t b = i < other.words_.size() ? other.words_[i] : 0;
    if (a != b) return false;
  }
  return true;
}

bool Bitset::intersects(const Bitset& other) const {
  const std::size_t n = std::min(words_.size(), other.words_.size());
  for (std::size_t i = 0; i < n; ++i) {
    if ((words_[i] & other.words_[i]) != 0) return true;
  }
  return false;
}

bool Bitset::is_subset_of(const Bitset& other) const {
  for (std::size_t i = 0; i < words_.size(); ++i) {
    const std::uint64_t b = i < other.words_.size() ? other.words_[i] : 0;
    if ((words_[i] & ~b) != 0) return false;
  }
  return true;
}

std::size_t Bitset::first() const {
  for (std::size_t w = 0; w < words_.size(); ++w) {
    if (words_[w] != 0) {
      return w * kBits + static_cast<std::size_t>(std::countr_zero(words_[w]));
    }
  }
  return npos;
}

std::size_t Bitset::next(std::size_t i) const {
  ++i;
  if (i >= capacity()) return npos;
  std::size_t w = i / kBits;
  std::uint64_t word = words_[w] & (~std::uint64_t{0} << (i % kBits));
  while (true) {
    if (word != 0) {
      return w * kBits + static_cast<std::size_t>(std::countr_zero(word));
    }
    if (++w >= words_.size()) return npos;
    word = words_[w];
  }
}

std::string Bitset::to_string() const {
  std::string out = "{";
  bool sep = false;
  for_each([&](std::size_t i) {
    if (sep) out += ", ";
    out += std::to_string(i);
    sep = true;
  });
  out += "}";
  return out;
}

}  // namespace loom::support

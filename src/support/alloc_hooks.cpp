// Replacement global operator new/delete feeding support::AllocCounter.
//
// Deliberately NOT part of the loom library: a static library must not
// impose replaced allocation operators on every embedder.  Targets that
// want heap tallies (bench_throughput, support_alloc_counter_test) add
// this file to their own sources; everything else keeps the toolchain's
// operators.  The hooks forward to malloc/free and bump the thread-local
// counters — no alignment games beyond what aligned-new requires, no
// behavior change besides the tally.
#include <cstdlib>
#include <new>

#include "support/alloc_counter.hpp"

namespace {

struct HookRegistrar {
  HookRegistrar() { loom::support::AllocCounter::mark_hooks_linked(); }
} g_hook_registrar;

void* counted_alloc(std::size_t n) noexcept {
  void* p = std::malloc(n != 0 ? n : 1);
  if (p != nullptr) loom::support::AllocCounter::note_alloc(n);
  return p;
}

void* counted_aligned_alloc(std::size_t n, std::align_val_t al) noexcept {
  const auto alignment = static_cast<std::size_t>(al);
  // aligned_alloc requires the size to be a multiple of the alignment.
  const std::size_t rounded = (n + alignment - 1) / alignment * alignment;
  void* p = std::aligned_alloc(alignment, rounded != 0 ? rounded : alignment);
  if (p != nullptr) loom::support::AllocCounter::note_alloc(n);
  return p;
}

void counted_free(void* p) noexcept {
  if (p == nullptr) return;
  loom::support::AllocCounter::note_free();
  std::free(p);
}

}  // namespace

void* operator new(std::size_t n) {
  void* p = counted_alloc(n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t n) {
  void* p = counted_alloc(n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  return counted_alloc(n);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  return counted_alloc(n);
}
void* operator new(std::size_t n, std::align_val_t al) {
  void* p = counted_aligned_alloc(n, al);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t n, std::align_val_t al) {
  void* p = counted_aligned_alloc(n, al);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new(std::size_t n, std::align_val_t al,
                   const std::nothrow_t&) noexcept {
  return counted_aligned_alloc(n, al);
}
void* operator new[](std::size_t n, std::align_val_t al,
                     const std::nothrow_t&) noexcept {
  return counted_aligned_alloc(n, al);
}

void operator delete(void* p) noexcept { counted_free(p); }
void operator delete[](void* p) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::size_t) noexcept { counted_free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  counted_free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  counted_free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  counted_free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  counted_free(p);
}
void operator delete(void* p, std::align_val_t,
                     const std::nothrow_t&) noexcept {
  counted_free(p);
}
void operator delete[](void* p, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  counted_free(p);
}

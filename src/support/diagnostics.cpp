#include "support/diagnostics.hpp"

#include <cstdio>
#include <cstdlib>

namespace loom::support {

#ifndef NDEBUG
void debug_assert_fail(const char* file, int line, const char* expr) {
  std::fprintf(stderr, "%s:%d: debug assertion failed: %s\n", file, line,
               expr);
  std::abort();
}
#endif

namespace {

const char* severity_name(Severity s) {
  switch (s) {
    case Severity::Note: return "note";
    case Severity::Warning: return "warning";
    case Severity::Error: return "error";
  }
  return "?";
}

}  // namespace

std::string Diagnostic::to_string() const {
  return std::to_string(pos.line) + ":" + std::to_string(pos.column) + ": " +
         severity_name(severity) + ": " + message;
}

void DiagnosticSink::error(SourcePos pos, std::string message) {
  diags_.push_back({Severity::Error, pos, std::move(message)});
  ++error_count_;
}

void DiagnosticSink::warning(SourcePos pos, std::string message) {
  diags_.push_back({Severity::Warning, pos, std::move(message)});
}

void DiagnosticSink::note(SourcePos pos, std::string message) {
  diags_.push_back({Severity::Note, pos, std::move(message)});
}

std::string DiagnosticSink::to_string() const {
  std::string out;
  for (const auto& d : diags_) {
    if (!out.empty()) out += '\n';
    out += d.to_string();
  }
  return out;
}

}  // namespace loom::support

// Dynamic bit set used to represent sets of interned interface names.
//
// Property alphabets are small (a handful to a few hundred names), so the
// set is a flat vector of 64-bit words with value semantics.  All set
// operations used by the monitors (membership, union, intersection test,
// iteration) are O(words).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace loom::support {

class Bitset {
 public:
  Bitset() = default;
  /// Creates an empty set able to hold values in [0, capacity).
  explicit Bitset(std::size_t capacity) { resize(capacity); }

  /// Grows (never shrinks) the capacity to at least `capacity` values.
  void resize(std::size_t capacity);

  std::size_t capacity() const { return words_.size() * kBits; }

  void set(std::size_t i);
  void reset(std::size_t i);
  bool test(std::size_t i) const;

  /// True when no bit is set.
  bool empty() const;
  /// Number of set bits.
  std::size_t count() const;

  void clear();

  Bitset& operator|=(const Bitset& other);
  Bitset& operator&=(const Bitset& other);
  /// Removes every element of `other` from this set.
  Bitset& subtract(const Bitset& other);

  friend Bitset operator|(Bitset a, const Bitset& b) { return a |= b; }
  friend Bitset operator&(Bitset a, const Bitset& b) { return a &= b; }

  bool operator==(const Bitset& other) const;

  /// True when the two sets share at least one element.
  bool intersects(const Bitset& other) const;
  /// True when every element of this set is in `other`.
  bool is_subset_of(const Bitset& other) const;

  /// Index of the lowest set bit, or npos when empty.
  std::size_t first() const;
  /// Index of the lowest set bit strictly greater than `i`, or npos.
  std::size_t next(std::size_t i) const;

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  /// Calls `fn(index)` for each set bit in increasing order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t word = words_[w];
      while (word != 0) {
        const int bit = __builtin_ctzll(word);
        fn(w * kBits + static_cast<std::size_t>(bit));
        word &= word - 1;
      }
    }
  }

  /// Debug rendering such as "{1, 4, 7}".
  std::string to_string() const;

 private:
  static constexpr std::size_t kBits = 64;
  std::vector<std::uint64_t> words_;
};

}  // namespace loom::support

#include "support/thread_pool.hpp"

namespace loom::support {

ThreadPool::ThreadPool(std::size_t threads, std::size_t queue_capacity)
    : capacity_(queue_capacity) {
  LOOM_DASSERT(queue_capacity > 0);
  if (threads == 0) threads = 1;
  queues_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    queues_.push_back(std::make_unique<Queue>());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(sync_);
    idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
  LOOM_DASSERT(queued_ == 0);
}

void ThreadPool::submit(Task task) {
  LOOM_DASSERT(task != nullptr);
  std::size_t target;
  {
    std::unique_lock<std::mutex> lock(sync_);
    LOOM_DASSERT(!stopping_);
    space_cv_.wait(lock, [this] { return queued_ < capacity_; });
    ++queued_;
    ++in_flight_;
    target = next_queue_;
    next_queue_ = (next_queue_ + 1) % queues_.size();
  }
  {
    Queue& q = *queues_[target];
    std::lock_guard<std::mutex> lock(q.mutex);
    q.tasks.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

bool ThreadPool::try_pop(std::size_t self, Task& out) {
  // Own queue first, newest task (LIFO keeps the producing shard's data
  // warm); then steal the oldest task of each sibling in turn.
  {
    Queue& q = *queues_[self];
    std::lock_guard<std::mutex> lock(q.mutex);
    if (!q.tasks.empty()) {
      out = std::move(q.tasks.back());
      q.tasks.pop_back();
      return true;
    }
  }
  for (std::size_t k = 1; k < queues_.size(); ++k) {
    Queue& q = *queues_[(self + k) % queues_.size()];
    std::lock_guard<std::mutex> lock(q.mutex);
    if (!q.tasks.empty()) {
      out = std::move(q.tasks.front());
      q.tasks.pop_front();
      return true;
    }
  }
  return false;
}

void ThreadPool::worker_loop(std::size_t self) {
  for (;;) {
    Task task;
    if (!try_pop(self, task)) {
      std::unique_lock<std::mutex> lock(sync_);
      // queued_ > 0 with empty deques only in the instant between a
      // submitter bumping the counter and pushing the task; re-scan.
      if (queued_ > 0) continue;
      if (stopping_) return;
      work_cv_.wait(lock, [this] { return queued_ > 0 || stopping_; });
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(sync_);
      LOOM_DASSERT(queued_ > 0);
      --queued_;
    }
    space_cv_.notify_one();
    try {
      task();
    } catch (...) {
      std::lock_guard<std::mutex> lock(sync_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    bool idle;
    {
      std::lock_guard<std::mutex> lock(sync_);
      LOOM_DASSERT(in_flight_ > 0);
      --in_flight_;
      idle = in_flight_ == 0;
    }
    if (idle) idle_cv_.notify_all();
  }
}

void ThreadPool::wait_idle() {
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(sync_);
    idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
    error = first_error_;
    first_error_ = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

void ThreadPool::for_each_index(
    std::size_t n, const std::function<void(std::size_t)>& body) {
  for (std::size_t i = 0; i < n; ++i) {
    submit([&body, i] { body(i); });
  }
  wait_idle();
}

}  // namespace loom::support

// Address-decoding bus router (the "Bus" of the paper's Fig. 2 platform).
//
// Maps address windows to target sockets, optionally rebasing the address to
// the window-relative offset, and annotates a per-hop latency.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tlm/socket.hpp"

namespace loom::tlm {

class Router final : public BlockingTransport {
 public:
  explicit Router(std::string name);

  /// Socket that initiators bind to.
  TargetSocket& target_socket() { return in_; }

  /// Maps [base, base+size) to `out`.  With `relative`, the target sees
  /// window-relative addresses.  Windows must not overlap.
  void map(std::uint64_t base, std::uint64_t size, TargetSocket& out,
           bool relative = true);

  void set_latency(sim::Time per_hop) { latency_ = per_hop; }

  void b_transport(Payload& trans, sim::Time& delay) override;

  /// Number of transactions routed (for tests and benches).
  std::uint64_t transaction_count() const { return transactions_; }

 private:
  struct MapEntry {
    std::uint64_t base = 0;
    std::uint64_t size = 0;
    TargetSocket* out = nullptr;
    bool relative = true;
  };

  const MapEntry* decode(std::uint64_t address) const;

  std::string name_;
  TargetSocket in_;
  std::vector<MapEntry> map_;
  sim::Time latency_;
  std::uint64_t transactions_ = 0;
};

}  // namespace loom::tlm

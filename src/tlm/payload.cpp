#include "tlm/payload.hpp"

#include <cstdio>
#include <stdexcept>

namespace loom::tlm {

const char* to_string(Command cmd) {
  switch (cmd) {
    case Command::Read: return "read";
    case Command::Write: return "write";
    case Command::Ignore: return "ignore";
  }
  return "?";
}

const char* to_string(Response resp) {
  switch (resp) {
    case Response::Incomplete: return "incomplete";
    case Response::Ok: return "ok";
    case Response::AddressError: return "address-error";
    case Response::CommandError: return "command-error";
    case Response::GenericError: return "generic-error";
  }
  return "?";
}

Payload Payload::read(std::uint64_t address, std::size_t length) {
  Payload p;
  p.command_ = Command::Read;
  p.address_ = address;
  p.data_.resize(length, 0);
  return p;
}

Payload Payload::write(std::uint64_t address, std::vector<std::uint8_t> data) {
  Payload p;
  p.command_ = Command::Write;
  p.address_ = address;
  p.data_ = std::move(data);
  return p;
}

Payload Payload::write_u32(std::uint64_t address, std::uint32_t value) {
  Payload p;
  p.command_ = Command::Write;
  p.address_ = address;
  p.data_.resize(4);
  p.set_u32(value);
  return p;
}

std::uint32_t Payload::get_u32(std::size_t offset) const {
  if (offset + 4 > data_.size()) {
    throw std::out_of_range("Payload::get_u32 past end of data");
  }
  return static_cast<std::uint32_t>(data_[offset]) |
         (static_cast<std::uint32_t>(data_[offset + 1]) << 8) |
         (static_cast<std::uint32_t>(data_[offset + 2]) << 16) |
         (static_cast<std::uint32_t>(data_[offset + 3]) << 24);
}

void Payload::set_u32(std::uint32_t value, std::size_t offset) {
  if (offset + 4 > data_.size()) {
    throw std::out_of_range("Payload::set_u32 past end of data");
  }
  data_[offset] = static_cast<std::uint8_t>(value & 0xff);
  data_[offset + 1] = static_cast<std::uint8_t>((value >> 8) & 0xff);
  data_[offset + 2] = static_cast<std::uint8_t>((value >> 16) & 0xff);
  data_[offset + 3] = static_cast<std::uint8_t>((value >> 24) & 0xff);
}

std::string Payload::to_string() const {
  std::string out = tlm::to_string(command_);
  out += " @0x";
  char buf[17];
  snprintf(buf, sizeof buf, "%llx",
                static_cast<unsigned long long>(address_));
  out += buf;
  out += " len=" + std::to_string(data_.size());
  out += " [";
  out += tlm::to_string(response_);
  out += "]";
  return out;
}

}  // namespace loom::tlm

// Initiator / target sockets for blocking transport.
//
// A TargetSocket is bound to a BlockingTransport implementation (the model
// of a slave).  An InitiatorSocket is bound to a TargetSocket.  Target
// sockets support passive observers: callbacks that see every completed
// transaction.  The monitor observation adapters (src/plat/observation.*)
// use them to turn bus traffic into interface events without touching the
// models, which is the paper's non-intrusive ABV setting.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/time.hpp"
#include "tlm/payload.hpp"

namespace loom::tlm {

/// Interface implemented by transaction targets (slaves and the router).
class BlockingTransport {
 public:
  virtual ~BlockingTransport() = default;

  /// Loosely-timed blocking transport; `delay` is the annotated time budget
  /// accumulated along the path, added to the caller's local time.
  virtual void b_transport(Payload& trans, sim::Time& delay) = 0;
};

class TargetSocket {
 public:
  explicit TargetSocket(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  void bind(BlockingTransport& impl) { impl_ = &impl; }
  bool bound() const { return impl_ != nullptr; }

  /// Observer invoked after the target handled the transaction.
  using Observer = std::function<void(const Payload&, sim::Time delay)>;
  void add_observer(Observer obs) { observers_.push_back(std::move(obs)); }

  /// Entry point used by the initiator side.
  void deliver(Payload& trans, sim::Time& delay);

 private:
  std::string name_;
  BlockingTransport* impl_ = nullptr;
  std::vector<Observer> observers_;
};

class InitiatorSocket {
 public:
  explicit InitiatorSocket(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  void bind(TargetSocket& target) { target_ = &target; }
  bool bound() const { return target_ != nullptr; }

  /// Observer invoked after each transaction issued through this socket
  /// completes (monitor taps on initiator-side activity, e.g. the IPU's
  /// gallery reads).
  using Observer = std::function<void(const Payload&, sim::Time delay)>;
  void add_observer(Observer obs) { observers_.push_back(std::move(obs)); }

  void b_transport(Payload& trans, sim::Time& delay);

  // Convenience register-access helpers.
  Response write_u32(std::uint64_t address, std::uint32_t value,
                     sim::Time& delay);
  Response read_u32(std::uint64_t address, std::uint32_t& value,
                    sim::Time& delay);
  Response read_block(std::uint64_t address, std::vector<std::uint8_t>& out,
                      std::size_t length, sim::Time& delay);

 private:
  std::string name_;
  TargetSocket* target_ = nullptr;
  std::vector<Observer> observers_;
};

}  // namespace loom::tlm

// Generic transaction payload, modeled on tlm_generic_payload.
//
// Carries a command, a byte-addressed target address, a data buffer and a
// response status.  Helpers for 32-bit register accesses (the dominant
// traffic in the case-study platform) use little-endian byte order.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace loom::tlm {

enum class Command { Read, Write, Ignore };

enum class Response {
  Incomplete,     // not yet handled by any target
  Ok,
  AddressError,   // no target mapped / register does not exist
  CommandError,   // target rejects the command kind
  GenericError,
};

const char* to_string(Command cmd);
const char* to_string(Response resp);

class Payload {
 public:
  Payload() = default;

  static Payload read(std::uint64_t address, std::size_t length);
  static Payload write(std::uint64_t address, std::vector<std::uint8_t> data);
  static Payload write_u32(std::uint64_t address, std::uint32_t value);

  Command command() const { return command_; }
  void set_command(Command cmd) { command_ = cmd; }

  std::uint64_t address() const { return address_; }
  void set_address(std::uint64_t address) { address_ = address; }

  const std::vector<std::uint8_t>& data() const { return data_; }
  std::vector<std::uint8_t>& data() { return data_; }
  std::size_t length() const { return data_.size(); }

  Response response() const { return response_; }
  void set_response(Response resp) { response_ = resp; }
  bool ok() const { return response_ == Response::Ok; }

  /// Little-endian 32-bit view of the data buffer (buffer must hold >= 4
  /// bytes from `offset`).
  std::uint32_t get_u32(std::size_t offset = 0) const;
  void set_u32(std::uint32_t value, std::size_t offset = 0);

  std::string to_string() const;

 private:
  Command command_ = Command::Ignore;
  std::uint64_t address_ = 0;
  std::vector<std::uint8_t> data_;
  Response response_ = Response::Incomplete;
};

}  // namespace loom::tlm

#include "tlm/router.hpp"

#include <stdexcept>

namespace loom::tlm {

Router::Router(std::string name)
    : name_(std::move(name)), in_(name_ + ".in") {
  in_.bind(*this);
}

void Router::map(std::uint64_t base, std::uint64_t size, TargetSocket& out,
                 bool relative) {
  if (size == 0) throw std::invalid_argument("Router::map: empty window");
  for (const auto& e : map_) {
    const bool disjoint = base + size <= e.base || e.base + e.size <= base;
    if (!disjoint) {
      throw std::invalid_argument("Router::map: overlapping window on '" +
                                  name_ + "'");
    }
  }
  map_.push_back({base, size, &out, relative});
}

const Router::MapEntry* Router::decode(std::uint64_t address) const {
  for (const auto& e : map_) {
    if (address >= e.base && address < e.base + e.size) return &e;
  }
  return nullptr;
}

void Router::b_transport(Payload& trans, sim::Time& delay) {
  ++transactions_;
  delay += latency_;
  const MapEntry* entry = decode(trans.address());
  if (entry == nullptr) {
    trans.set_response(Response::AddressError);
    return;
  }
  const std::uint64_t original = trans.address();
  if (entry->relative) trans.set_address(original - entry->base);
  entry->out->deliver(trans, delay);
  trans.set_address(original);  // restore for upstream observers
}

}  // namespace loom::tlm

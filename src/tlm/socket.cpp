#include "tlm/socket.hpp"

#include <stdexcept>

namespace loom::tlm {

void TargetSocket::deliver(Payload& trans, sim::Time& delay) {
  if (impl_ == nullptr) {
    throw std::logic_error("TargetSocket '" + name_ + "' is not bound");
  }
  impl_->b_transport(trans, delay);
  for (const auto& obs : observers_) obs(trans, delay);
}

void InitiatorSocket::b_transport(Payload& trans, sim::Time& delay) {
  if (target_ == nullptr) {
    throw std::logic_error("InitiatorSocket '" + name_ + "' is not bound");
  }
  target_->deliver(trans, delay);
  for (const auto& obs : observers_) obs(trans, delay);
}

Response InitiatorSocket::write_u32(std::uint64_t address, std::uint32_t value,
                                    sim::Time& delay) {
  Payload p = Payload::write_u32(address, value);
  b_transport(p, delay);
  return p.response();
}

Response InitiatorSocket::read_u32(std::uint64_t address, std::uint32_t& value,
                                   sim::Time& delay) {
  Payload p = Payload::read(address, 4);
  b_transport(p, delay);
  if (p.ok()) value = p.get_u32();
  return p.response();
}

Response InitiatorSocket::read_block(std::uint64_t address,
                                     std::vector<std::uint8_t>& out,
                                     std::size_t length, sim::Time& delay) {
  Payload p = Payload::read(address, length);
  b_transport(p, delay);
  if (p.ok()) out = p.data();
  return p.response();
}

}  // namespace loom::tlm

// GPIO block handling the device's button (Fig. 2).
//
//   0x00 IN      (RO)  bit 0: button level
//   0x04 INT_ACK (WO)  clear the latched press
// A button press latches bit 0 and raises the GPIO interrupt line; the
// testbench presses the button via press_button().
#pragma once

#include "plat/intc.hpp"
#include "sim/module.hpp"
#include "tlm/socket.hpp"

namespace loom::plat {

class Gpio final : public sim::Module, public tlm::BlockingTransport {
 public:
  static constexpr std::uint64_t kIn = 0x00;
  static constexpr std::uint64_t kIntAck = 0x04;

  Gpio(sim::Scheduler& scheduler, std::string name, Intc& intc,
       unsigned irq_line, sim::Module* parent = nullptr);

  tlm::TargetSocket& socket() { return socket_; }

  /// External stimulus: a human pressing the button.
  void press_button();

  std::uint64_t presses() const { return presses_; }

  void b_transport(tlm::Payload& trans, sim::Time& delay) override;

 private:
  tlm::TargetSocket socket_;
  Intc& intc_;
  unsigned irq_line_;
  bool latched_ = false;
  std::uint64_t presses_ = 0;
};

}  // namespace loom::plat

#include "plat/cpu.hpp"

#include <stdexcept>

#include "plat/gpio.hpp"
#include "plat/intc.hpp"
#include "plat/ipu.hpp"
#include "plat/lcdc.hpp"
#include "plat/lock.hpp"
#include "plat/sensor.hpp"
#include "plat/timer.hpp"

namespace loom::plat {

Cpu::Cpu(sim::Scheduler& scheduler, std::string name, AddressMap map,
         IrqLines lines, std::uint32_t gallery_size, std::uint64_t seed,
         sim::Module* parent)
    : sim::Module(scheduler, std::move(name), parent),
      socket_(full_name() + ".socket"),
      map_(map),
      lines_(lines),
      gallery_size_(gallery_size),
      rng_(seed) {
  spawn(firmware(), "firmware");
}

std::uint32_t Cpu::read32(std::uint64_t address) {
  std::uint32_t value = 0;
  sim::Time delay;
  const auto resp = socket_.read_u32(address, value, delay);
  if (resp != tlm::Response::Ok) {
    throw std::runtime_error("CPU read fault at 0x" + std::to_string(address) +
                             ": " + tlm::to_string(resp));
  }
  return value;
}

void Cpu::write32(std::uint64_t address, std::uint32_t value) {
  sim::Time delay;
  const auto resp = socket_.write_u32(address, value, delay);
  if (resp != tlm::Response::Ok) {
    throw std::runtime_error("CPU write fault at 0x" +
                             std::to_string(address) + ": " +
                             tlm::to_string(resp));
  }
}

// The firmware: interrupt-driven access-control main loop.
sim::Process Cpu::firmware() {
  // A small macro-free idiom for "wait until INTC line is pending, ack it":
  // check-then-wait so that already-pending lines do not block.
#define LOOM_WAIT_LINE(line)                                        \
  for (;;) {                                                        \
    const std::uint32_t pending = read32(map_.intc + Intc::kStatus); \
    if ((pending & (1u << (line))) != 0) {                          \
      write32(map_.intc + Intc::kAck, 1u << (line));                \
      break;                                                        \
    }                                                               \
    co_await scheduler().wait(*irq_);                               \
  }

  // Boot: enable all interrupt lines, point the LCDC at the image buffer.
  write32(map_.intc + Intc::kEnable, 0xFu);
  write32(map_.lcdc + Lcdc::kFbAddr,
          static_cast<std::uint32_t>(map_.image_buffer));
  write32(map_.lcdc + Lcdc::kCtrl, 1);

  for (;;) {
    LOOM_WAIT_LINE(lines_.button);
    write32(map_.gpio + Gpio::kIntAck, 1);

    // Capture the visitor's face.
    write32(map_.sensor + Sensor::kDstAddr,
            static_cast<std::uint32_t>(map_.image_buffer));
    write32(map_.sensor + Sensor::kCtrl, 1);
    LOOM_WAIT_LINE(lines_.sensor);

    // Configure the IPU.  The order of the three writes is irrelevant by
    // design (the paper's loose-ordering); the firmware randomizes it.
    struct RegWrite {
      std::uint64_t offset;
      std::uint32_t value;
    };
    RegWrite writes[3] = {
        {Ipu::kImgAddr, static_cast<std::uint32_t>(map_.image_buffer)},
        {Ipu::kGlAddr, static_cast<std::uint32_t>(map_.gallery_base)},
        {Ipu::kGlSize, gallery_size_},
    };
    for (std::size_t k = 3; k > 1; --k) {
      std::swap(writes[k - 1], writes[rng_.below(k)]);
    }
    if (faults_.early_start) {
      write32(map_.ipu + Ipu::kCtrl, 1);  // bug: launch before configuring
    }
    for (const auto& w : writes) {
      if (faults_.skip_glsize_write && w.offset == Ipu::kGlSize) continue;
      write32(map_.ipu + w.offset, w.value);
    }
    if (!faults_.early_start) {
      write32(map_.ipu + Ipu::kCtrl, 1);
    }
    LOOM_WAIT_LINE(lines_.ipu);

    const std::uint32_t status = read32(map_.ipu + Ipu::kStatus);
    if (status == static_cast<std::uint32_t>(Ipu::Status::Match)) {
      ++matches_;
      // Open the door and arm the auto-close timer (TMR2).
      write32(map_.lock + Lock::kCtrl, 1);
      write32(map_.timer2 + Timer::kLoadNs, 200000);  // 200 us
      write32(map_.timer2 + Timer::kCtrl, 1);
      LOOM_WAIT_LINE(lines_.timer2);
      write32(map_.lock + Lock::kCtrl, 0);
    }
    ++rounds_;
  }
#undef LOOM_WAIT_LINE
}

}  // namespace loom::plat

// Interrupt controller (INTC): aggregates device interrupt lines into one
// CPU interrupt with per-line enable and acknowledge registers.
//
//   0x00 STATUS  (RO)  pending lines
//   0x04 ENABLE  (RW)  line mask
//   0x08 ACK     (WO)  write-1-to-clear
#pragma once

#include <cstdint>

#include "sim/event.hpp"
#include "sim/module.hpp"
#include "tlm/socket.hpp"

namespace loom::plat {

class Intc final : public sim::Module, public tlm::BlockingTransport {
 public:
  static constexpr std::uint64_t kStatus = 0x00;
  static constexpr std::uint64_t kEnable = 0x04;
  static constexpr std::uint64_t kAck = 0x08;

  Intc(sim::Scheduler& scheduler, std::string name,
       sim::Module* parent = nullptr);

  tlm::TargetSocket& socket() { return socket_; }

  /// Device-side: raises interrupt line `line` (level-triggered pending bit).
  void raise(unsigned line);

  /// CPU-side: triggered whenever a pending & enabled line exists.
  sim::Event& cpu_irq() { return cpu_irq_; }

  std::uint32_t pending() const { return pending_; }
  bool active() const { return (pending_ & enable_) != 0; }

  void b_transport(tlm::Payload& trans, sim::Time& delay) override;

 private:
  tlm::TargetSocket socket_;
  sim::Event cpu_irq_;
  std::uint32_t pending_ = 0;
  std::uint32_t enable_ = 0;
};

}  // namespace loom::plat

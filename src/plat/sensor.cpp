#include "plat/sensor.hpp"

namespace loom::plat {

Sensor::Sensor(sim::Scheduler& scheduler, std::string name, Intc& intc,
               unsigned irq_line, std::uint64_t seed, sim::Module* parent)
    : sim::Module(scheduler, std::move(name), parent),
      socket_(full_name() + ".socket"),
      dma_(full_name() + ".dma"),
      intc_(intc),
      irq_line_(irq_line),
      capture_requested_(scheduler, full_name() + ".capture"),
      rng_(seed) {
  socket_.bind(*this);
  staged_.resize(kImageBytes);
  for (auto& b : staged_) b = static_cast<std::uint8_t>(rng_.below(256));
  spawn(capture_process(), "capture");
}

void Sensor::stage_image(const std::vector<std::uint8_t>& pixels) {
  staged_ = pixels;
  staged_.resize(kImageBytes, 0);
}

sim::Process Sensor::capture_process() {
  for (;;) {
    co_await scheduler().wait(capture_requested_);
    status_ = 1;  // busy: exposure time
    co_await scheduler().wait(sim::Time::us(5));
    tlm::Payload p = tlm::Payload::write(dst_addr_, staged_);
    sim::Time delay;
    dma_.b_transport(p, delay);
    co_await scheduler().wait(delay);
    status_ = 2;  // done
    ++captures_;
    intc_.raise(irq_line_);
  }
}

void Sensor::b_transport(tlm::Payload& trans, sim::Time& delay) {
  delay += sim::Time::ns(5);
  if (trans.length() != 4) {
    trans.set_response(tlm::Response::GenericError);
    return;
  }
  switch (trans.address()) {
    case kCtrl:
      if (trans.command() != tlm::Command::Write) {
        trans.set_response(tlm::Response::CommandError);
        return;
      }
      if (trans.get_u32() == 1) capture_requested_.notify();
      break;
    case kStatus:
      if (trans.command() != tlm::Command::Read) {
        trans.set_response(tlm::Response::CommandError);
        return;
      }
      trans.set_u32(status_);
      break;
    case kDstAddr:
      if (trans.command() == tlm::Command::Read) {
        trans.set_u32(dst_addr_);
      } else {
        dst_addr_ = trans.get_u32();
      }
      break;
    default:
      trans.set_response(tlm::Response::AddressError);
      return;
  }
  trans.set_response(tlm::Response::Ok);
}

}  // namespace loom::plat

#include "plat/ipu.hpp"

#include <limits>

namespace loom::plat {

Ipu::Ipu(sim::Scheduler& scheduler, std::string name, Intc& intc,
         unsigned irq_line, sim::Time per_image, sim::Module* parent)
    : sim::Module(scheduler, std::move(name), parent),
      socket_(full_name() + ".socket"),
      dma_(full_name() + ".dma"),
      intc_(intc),
      irq_line_(irq_line),
      per_image_(per_image),
      start_requested_(scheduler, full_name() + ".start") {
  socket_.bind(*this);
  spawn(engine_process(), "engine");
}

void Ipu::raise_irq() {
  for (const auto& tap : irq_taps_) tap();
  intc_.raise(irq_line_);
}

sim::Process Ipu::engine_process() {
  for (;;) {
    co_await scheduler().wait(start_requested_);
    status_ = Status::Busy;
    best_ = std::numeric_limits<std::uint32_t>::max();
    best_idx_ = 0;

    // Read the probe image (one read_img output).
    tlm::Payload probe = tlm::Payload::read(img_addr_, kImageBytes);
    sim::Time delay;
    dma_.b_transport(probe, delay);
    ++gallery_reads_;
    co_await scheduler().wait(delay);

    const sim::Time step = per_image_ * faults_.slow_factor;
    for (std::uint32_t k = 0; k < gl_size_; ++k) {
      // Read gallery entry k (a read_img output), then "process" it.
      tlm::Payload entry =
          tlm::Payload::read(gl_addr_ + k * kImageBytes, kImageBytes);
      sim::Time entry_delay;
      dma_.b_transport(entry, entry_delay);
      ++gallery_reads_;
      co_await scheduler().wait(entry_delay + step);
      if (!probe.ok() || !entry.ok()) continue;
      // Sum of absolute differences: the smaller, the more similar.
      std::uint32_t score = 0;
      for (std::size_t b = 0; b < kImageBytes; ++b) {
        const int d = static_cast<int>(probe.data()[b]) -
                      static_cast<int>(entry.data()[b]);
        score += static_cast<std::uint32_t>(d < 0 ? -d : d);
      }
      if (score < best_) {
        best_ = score;
        best_idx_ = k;
      }
    }
    status_ = best_ <= kMatchThreshold ? Status::Match : Status::NoMatch;
    ++recognitions_;
    if (!faults_.skip_irq) raise_irq();
  }
}

void Ipu::b_transport(tlm::Payload& trans, sim::Time& delay) {
  delay += sim::Time::ns(5);
  if (trans.length() != 4) {
    trans.set_response(tlm::Response::GenericError);
    return;
  }
  const bool is_read = trans.command() == tlm::Command::Read;
  switch (trans.address()) {
    case kImgAddr:
      if (is_read) {
        trans.set_u32(img_addr_);
      } else {
        img_addr_ = trans.get_u32();
      }
      break;
    case kGlAddr:
      if (is_read) {
        trans.set_u32(gl_addr_);
      } else {
        gl_addr_ = trans.get_u32();
      }
      break;
    case kGlSize:
      if (is_read) {
        trans.set_u32(gl_size_);
      } else {
        gl_size_ = trans.get_u32();
      }
      break;
    case kCtrl:
      if (is_read) {
        trans.set_response(tlm::Response::CommandError);
        return;
      }
      if (trans.get_u32() == 1) start_requested_.notify();
      break;
    case kStatus:
      if (!is_read) {
        trans.set_response(tlm::Response::CommandError);
        return;
      }
      trans.set_u32(static_cast<std::uint32_t>(status_));
      break;
    case kBest:
      if (!is_read) {
        trans.set_response(tlm::Response::CommandError);
        return;
      }
      trans.set_u32(best_);
      break;
    case kBestIdx:
      if (!is_read) {
        trans.set_response(tlm::Response::CommandError);
        return;
      }
      trans.set_u32(best_idx_);
      break;
    default:
      trans.set_response(tlm::Response::AddressError);
      return;
  }
  trans.set_response(tlm::Response::Ok);
}

}  // namespace loom::plat

// The full access-control virtual platform of the paper's Fig. 2:
//
//   GPIO  SEN  IPU  LCDC  INTC
//   TMR1  MEM  LOCK TMR2  CPU     -- all on one Bus
//
// AccessControlPlatform assembles and wires the models, preloads a face
// gallery, runs a testbench process that presses the button, and exposes
// the IPU observation adapter so monitors can be attached.  Fault knobs
// reproduce the buggy firmware / buggy IPU scenarios that the paper's
// properties (Examples 2 and 3) are meant to catch.
#pragma once

#include <memory>

#include "abv/trace.hpp"
#include "plat/cpu.hpp"
#include "plat/gpio.hpp"
#include "plat/intc.hpp"
#include "plat/ipu.hpp"
#include "plat/lcdc.hpp"
#include "plat/lock.hpp"
#include "plat/memory.hpp"
#include "plat/observation.hpp"
#include "plat/sensor.hpp"
#include "plat/timer.hpp"
#include "tlm/router.hpp"

namespace loom::plat {

struct PlatformConfig {
  std::uint64_t seed = 1;
  std::size_t button_presses = 3;
  sim::Time press_interval = sim::Time::ms(1);
  std::uint32_t gallery_size = 8;
  sim::Time ipu_per_image = sim::Time::us(2);
  /// Stage a gallery-matching probe image every k-th press (0 = never).
  std::uint32_t match_every = 2;

  // Fault injection (see DESIGN.md §4 and the platform tests).
  bool fault_skip_glsize = false;  // firmware forgets set_glSize
  bool fault_early_start = false;  // firmware starts IPU before configuring
  bool fault_skip_irq = false;     // IPU drops its completion interrupt
  std::uint32_t fault_slow_factor = 1;  // IPU processing slowdown
};

class AccessControlPlatform {
 public:
  // Bus memory map.
  static constexpr std::uint64_t kMemBase = 0x00000000, kMemSize = 0x40000;
  static constexpr std::uint64_t kIpuBase = 0x10000000;
  static constexpr std::uint64_t kSenBase = 0x11000000;
  static constexpr std::uint64_t kLcdcBase = 0x12000000;
  static constexpr std::uint64_t kIntcBase = 0x13000000;
  static constexpr std::uint64_t kTmr1Base = 0x14000000;
  static constexpr std::uint64_t kTmr2Base = 0x15000000;
  static constexpr std::uint64_t kGpioBase = 0x16000000;
  static constexpr std::uint64_t kLockBase = 0x17000000;
  static constexpr std::uint64_t kDeviceWindow = 0x1000;

  static constexpr std::uint64_t kImageBuffer = 0x1000;
  static constexpr std::uint64_t kGalleryBase = 0x2000;

  explicit AccessControlPlatform(const PlatformConfig& config = {});

  /// Runs the scenario (button presses + firmware rounds) up to `limit`.
  sim::Time run(sim::Time limit = sim::Time::max());

  sim::Scheduler& scheduler() { return sched_; }
  spec::Alphabet& alphabet() { return alphabet_; }
  const IpuInterface& interface_names() const { return names_; }
  IpuObserver& observer() { return *observer_; }
  const abv::TraceRecorder& recorder() const { return recorder_; }

  Ipu& ipu() { return *ipu_; }
  Cpu& cpu() { return *cpu_; }
  Lock& lock() { return *lock_; }
  Gpio& gpio() { return *gpio_; }
  Lcdc& lcdc() { return *lcdc_; }
  Memory& memory() { return *mem_; }
  tlm::Router& bus() { return bus_; }

  const PlatformConfig& config() const { return config_; }

 private:
  sim::Process testbench();
  void preload_gallery();

  PlatformConfig config_;
  sim::Scheduler sched_;
  spec::Alphabet alphabet_;
  IpuInterface names_;
  sim::Module top_;
  tlm::Router bus_;

  std::unique_ptr<Memory> mem_;
  std::unique_ptr<Intc> intc_;
  std::unique_ptr<Gpio> gpio_;
  std::unique_ptr<Sensor> sensor_;
  std::unique_ptr<Ipu> ipu_;
  std::unique_ptr<Lcdc> lcdc_;
  std::unique_ptr<Timer> tmr1_;
  std::unique_ptr<Timer> tmr2_;
  std::unique_ptr<Lock> lock_;
  std::unique_ptr<Cpu> cpu_;
  std::unique_ptr<IpuObserver> observer_;
  abv::TraceRecorder recorder_;
  support::Rng rng_;
};

}  // namespace loom::plat

// Image Processing Unit (IPU): the component of the paper's case study.
//
// The IPU performs face recognition: configured through registers with the
// probe-image address, the gallery address and the gallery size, it is
// launched by writing CTRL, reads the probe and every gallery image from
// memory (the paper's `read_img` outputs), computes a sum-of-absolute-
// differences score per gallery entry, and signals completion with its
// interrupt (the paper's `set_irq`).
//
// Interface events of the paper's §3:
//   inputs  : set_imgAddr (write 0x00), set_glAddr (write 0x04),
//             set_glSize (write 0x08), start (write 1 to CTRL 0x0C)
//   outputs : read_img (each memory read it initiates), set_irq
//
// Register map:
//   0x00 IMG_ADDR (RW)   0x04 GL_ADDR (RW)   0x08 GL_SIZE (RW)
//   0x0C CTRL     (WO, 1=start)
//   0x10 STATUS   (RO) 0 idle, 1 busy, 2 done-match, 3 done-no-match
//   0x14 BEST     (RO) best (lowest) score
//   0x18 BEST_IDX (RO) index of the best gallery entry
//
// Fault-injection knobs model the buggy-RTL scenarios of the evaluation:
// a dropped interrupt and a pathologically slow engine (deadline misses).
#pragma once

#include <functional>

#include "plat/intc.hpp"
#include "sim/module.hpp"
#include "tlm/socket.hpp"

namespace loom::plat {

class Ipu final : public sim::Module, public tlm::BlockingTransport {
 public:
  static constexpr std::uint64_t kImgAddr = 0x00;
  static constexpr std::uint64_t kGlAddr = 0x04;
  static constexpr std::uint64_t kGlSize = 0x08;
  static constexpr std::uint64_t kCtrl = 0x0C;
  static constexpr std::uint64_t kStatus = 0x10;
  static constexpr std::uint64_t kBest = 0x14;
  static constexpr std::uint64_t kBestIdx = 0x18;

  static constexpr std::size_t kImageBytes = 64;
  /// Scores at or below this threshold count as a match.
  static constexpr std::uint32_t kMatchThreshold = 600;

  enum class Status : std::uint32_t { Idle = 0, Busy = 1, Match = 2, NoMatch = 3 };

  struct Faults {
    bool skip_irq = false;      // never raise the completion interrupt
    std::uint32_t slow_factor = 1;  // multiply per-image processing time
  };

  Ipu(sim::Scheduler& scheduler, std::string name, Intc& intc,
      unsigned irq_line, sim::Time per_image = sim::Time::us(2),
      sim::Module* parent = nullptr);

  tlm::TargetSocket& socket() { return socket_; }
  /// Bus master port used for gallery reads (tap it for read_img events).
  tlm::InitiatorSocket& dma() { return dma_; }

  Faults& faults() { return faults_; }

  Status status() const { return status_; }
  std::uint32_t best_score() const { return best_; }
  std::uint64_t recognitions() const { return recognitions_; }
  std::uint64_t gallery_reads() const { return gallery_reads_; }

  /// Synchronous taps on the interrupt output (observation adapters).
  void add_irq_tap(std::function<void()> tap) {
    irq_taps_.push_back(std::move(tap));
  }

  void b_transport(tlm::Payload& trans, sim::Time& delay) override;

 private:
  sim::Process engine_process();
  void raise_irq();

  tlm::TargetSocket socket_;
  tlm::InitiatorSocket dma_;
  Intc& intc_;
  unsigned irq_line_;
  sim::Time per_image_;
  sim::Event start_requested_;
  Faults faults_;

  std::uint32_t img_addr_ = 0;
  std::uint32_t gl_addr_ = 0;
  std::uint32_t gl_size_ = 0;
  Status status_ = Status::Idle;
  std::uint32_t best_ = 0;
  std::uint32_t best_idx_ = 0;
  std::uint64_t recognitions_ = 0;
  std::uint64_t gallery_reads_ = 0;
  std::vector<std::function<void()>> irq_taps_;
};

}  // namespace loom::plat

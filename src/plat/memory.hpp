// System memory (MEM of the paper's Fig. 2 platform): a flat byte array
// behind a target socket, holding the captured image, the face gallery and
// the LCDC framebuffer.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/module.hpp"
#include "tlm/socket.hpp"

namespace loom::plat {

class Memory final : public sim::Module, public tlm::BlockingTransport {
 public:
  Memory(sim::Scheduler& scheduler, std::string name, std::size_t bytes,
         sim::Time access_latency = sim::Time::ns(10),
         sim::Module* parent = nullptr);

  tlm::TargetSocket& socket() { return socket_; }

  void b_transport(tlm::Payload& trans, sim::Time& delay) override;

  /// Backdoor access (test setup, gallery preloading).
  std::uint8_t* data() { return storage_.data(); }
  std::size_t size() const { return storage_.size(); }
  void poke(std::uint64_t address, const std::vector<std::uint8_t>& bytes);
  std::vector<std::uint8_t> peek(std::uint64_t address,
                                 std::size_t length) const;

  std::uint64_t reads() const { return reads_; }
  std::uint64_t writes() const { return writes_; }

 private:
  tlm::TargetSocket socket_;
  std::vector<std::uint8_t> storage_;
  sim::Time latency_;
  std::uint64_t reads_ = 0;
  std::uint64_t writes_ = 0;
};

}  // namespace loom::plat

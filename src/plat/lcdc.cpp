#include "plat/lcdc.hpp"

namespace loom::plat {

Lcdc::Lcdc(sim::Scheduler& scheduler, std::string name,
           sim::Time refresh_period, sim::Module* parent)
    : sim::Module(scheduler, std::move(name), parent),
      socket_(full_name() + ".socket"),
      dma_(full_name() + ".dma"),
      period_(refresh_period) {
  socket_.bind(*this);
  spawn(refresh_process(), "refresh");
}

sim::Process Lcdc::refresh_process() {
  for (;;) {
    co_await scheduler().wait(period_);
    if (!enabled_ || !dma_.bound()) continue;
    tlm::Payload p = tlm::Payload::read(fb_addr_, kFramebufferBytes);
    sim::Time delay;
    dma_.b_transport(p, delay);
    co_await scheduler().wait(delay);
    if (p.ok()) ++frames_;
  }
}

void Lcdc::b_transport(tlm::Payload& trans, sim::Time& delay) {
  delay += sim::Time::ns(5);
  if (trans.length() != 4) {
    trans.set_response(tlm::Response::GenericError);
    return;
  }
  switch (trans.address()) {
    case kCtrl:
      if (trans.command() == tlm::Command::Read) {
        trans.set_u32(enabled_ ? 1 : 0);
      } else {
        enabled_ = trans.get_u32() == 1;
      }
      break;
    case kFbAddr:
      if (trans.command() == tlm::Command::Read) {
        trans.set_u32(fb_addr_);
      } else {
        fb_addr_ = trans.get_u32();
      }
      break;
    case kFrames:
      if (trans.command() != tlm::Command::Read) {
        trans.set_response(tlm::Response::CommandError);
        return;
      }
      trans.set_u32(frames_);
      break;
    default:
      trans.set_response(tlm::Response::AddressError);
      return;
  }
  trans.set_response(tlm::Response::Ok);
}

}  // namespace loom::plat

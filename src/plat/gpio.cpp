#include "plat/gpio.hpp"

namespace loom::plat {

Gpio::Gpio(sim::Scheduler& scheduler, std::string name, Intc& intc,
           unsigned irq_line, sim::Module* parent)
    : sim::Module(scheduler, std::move(name), parent),
      socket_(full_name() + ".socket"),
      intc_(intc),
      irq_line_(irq_line) {
  socket_.bind(*this);
}

void Gpio::press_button() {
  ++presses_;
  latched_ = true;
  intc_.raise(irq_line_);
}

void Gpio::b_transport(tlm::Payload& trans, sim::Time& delay) {
  delay += sim::Time::ns(5);
  if (trans.length() != 4) {
    trans.set_response(tlm::Response::GenericError);
    return;
  }
  switch (trans.address()) {
    case kIn:
      if (trans.command() != tlm::Command::Read) {
        trans.set_response(tlm::Response::CommandError);
        return;
      }
      trans.set_u32(latched_ ? 1 : 0);
      break;
    case kIntAck:
      if (trans.command() != tlm::Command::Write) {
        trans.set_response(tlm::Response::CommandError);
        return;
      }
      latched_ = false;
      break;
    default:
      trans.set_response(tlm::Response::AddressError);
      return;
  }
  trans.set_response(tlm::Response::Ok);
}

}  // namespace loom::plat

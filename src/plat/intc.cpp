#include "plat/intc.hpp"

namespace loom::plat {

Intc::Intc(sim::Scheduler& scheduler, std::string name, sim::Module* parent)
    : sim::Module(scheduler, std::move(name), parent),
      socket_(full_name() + ".socket"),
      cpu_irq_(scheduler, full_name() + ".cpu_irq") {
  socket_.bind(*this);
}

void Intc::raise(unsigned line) {
  pending_ |= 1u << line;
  if (active()) cpu_irq_.notify();
}

void Intc::b_transport(tlm::Payload& trans, sim::Time& delay) {
  delay += sim::Time::ns(5);
  if (trans.length() != 4) {
    trans.set_response(tlm::Response::GenericError);
    return;
  }
  switch (trans.address()) {
    case kStatus:
      if (trans.command() != tlm::Command::Read) {
        trans.set_response(tlm::Response::CommandError);
        return;
      }
      trans.set_u32(pending_);
      break;
    case kEnable:
      if (trans.command() == tlm::Command::Read) {
        trans.set_u32(enable_);
      } else {
        enable_ = trans.get_u32();
        if (active()) cpu_irq_.notify();
      }
      break;
    case kAck:
      if (trans.command() != tlm::Command::Write) {
        trans.set_response(tlm::Response::CommandError);
        return;
      }
      pending_ &= ~trans.get_u32();
      break;
    default:
      trans.set_response(tlm::Response::AddressError);
      return;
  }
  trans.set_response(tlm::Response::Ok);
}

}  // namespace loom::plat

// CPU with the embedded access-control firmware (Fig. 2): on a button
// press it captures an image, configures the IPU (register writes in a
// randomized order — the loose-ordering freedom the paper motivates),
// starts face recognition, waits for the IPU interrupt, and on a match
// opens the door lock with a timed auto-close via TMR2.
//
// Firmware fault-injection knobs produce the buggy behaviours the monitors
// must catch: forgetting a register write and starting the IPU before its
// configuration is complete.
#pragma once

#include "sim/module.hpp"
#include "support/rng.hpp"
#include "tlm/socket.hpp"

namespace loom::plat {

class Cpu final : public sim::Module {
 public:
  /// Interrupt line assignment shared with the platform wiring.
  struct IrqLines {
    unsigned button = 0;
    unsigned sensor = 1;
    unsigned ipu = 2;
    unsigned timer2 = 3;
  };

  /// Bus addresses of the peripherals (set by the platform).
  struct AddressMap {
    std::uint64_t gpio = 0;
    std::uint64_t sensor = 0;
    std::uint64_t ipu = 0;
    std::uint64_t intc = 0;
    std::uint64_t timer2 = 0;
    std::uint64_t lock = 0;
    std::uint64_t lcdc = 0;
    std::uint64_t image_buffer = 0;   // in MEM
    std::uint64_t gallery_base = 0;   // in MEM
  };

  struct Faults {
    bool skip_glsize_write = false;  // forget set_glSize  (Example 2 bug)
    bool early_start = false;        // start before configuring (Example 2)
  };

  Cpu(sim::Scheduler& scheduler, std::string name, AddressMap map,
      IrqLines lines, std::uint32_t gallery_size, std::uint64_t seed,
      sim::Module* parent = nullptr);

  tlm::InitiatorSocket& socket() { return socket_; }
  Faults& faults() { return faults_; }

  /// Completed access-control rounds (button -> verdict).
  std::uint64_t rounds_completed() const { return rounds_; }
  std::uint64_t matches() const { return matches_; }

  /// CPU waits on this event; the platform connects it to the INTC output.
  void attach_irq(sim::Event& cpu_irq) { irq_ = &cpu_irq; }

 private:
  sim::Process firmware();
  std::uint32_t read32(std::uint64_t address);
  void write32(std::uint64_t address, std::uint32_t value);

  tlm::InitiatorSocket socket_;
  AddressMap map_;
  IrqLines lines_;
  std::uint32_t gallery_size_;
  support::Rng rng_;
  Faults faults_;
  sim::Event* irq_ = nullptr;
  std::uint64_t rounds_ = 0;
  std::uint64_t matches_ = 0;
};

}  // namespace loom::plat

#include "plat/timer.hpp"

namespace loom::plat {

Timer::Timer(sim::Scheduler& scheduler, std::string name, Intc& intc,
             unsigned irq_line, sim::Module* parent)
    : sim::Module(scheduler, std::move(name), parent),
      socket_(full_name() + ".socket"),
      intc_(intc),
      irq_line_(irq_line),
      expiry_(scheduler, full_name() + ".expiry") {
  socket_.bind(*this);
  expiry_.on_trigger([this] {
    if (!running_) return;
    running_ = false;
    ++expirations_;
    intc_.raise(irq_line_);
  });
}

void Timer::start() {
  running_ = true;
  expiry_.cancel();
  expiry_.notify(sim::Time::ns(load_ns_));
}

void Timer::b_transport(tlm::Payload& trans, sim::Time& delay) {
  delay += sim::Time::ns(5);
  if (trans.length() != 4) {
    trans.set_response(tlm::Response::GenericError);
    return;
  }
  switch (trans.address()) {
    case kLoadNs:
      if (trans.command() == tlm::Command::Read) {
        trans.set_u32(load_ns_);
      } else {
        load_ns_ = trans.get_u32();
      }
      break;
    case kCtrl:
      if (trans.command() != tlm::Command::Write) {
        trans.set_response(tlm::Response::CommandError);
        return;
      }
      if (trans.get_u32() == 1) {
        start();
      } else {
        running_ = false;
        expiry_.cancel();
      }
      break;
    case kStatus:
      if (trans.command() != tlm::Command::Read) {
        trans.set_response(tlm::Response::CommandError);
        return;
      }
      trans.set_u32(running_ ? 1 : 0);
      break;
    default:
      trans.set_response(tlm::Response::AddressError);
      return;
  }
  trans.set_response(tlm::Response::Ok);
}

}  // namespace loom::plat

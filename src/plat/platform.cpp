#include "plat/platform.hpp"

namespace loom::plat {

AccessControlPlatform::AccessControlPlatform(const PlatformConfig& config)
    : config_(config),
      names_(IpuInterface::declare(alphabet_)),
      top_(sched_, "top"),
      bus_("top.bus"),
      rng_(config.seed) {
  const Cpu::IrqLines lines{};

  mem_ = std::make_unique<Memory>(sched_, "mem", kMemSize, sim::Time::ns(10),
                                  &top_);
  intc_ = std::make_unique<Intc>(sched_, "intc", &top_);
  gpio_ = std::make_unique<Gpio>(sched_, "gpio", *intc_, lines.button, &top_);
  sensor_ = std::make_unique<Sensor>(sched_, "sen", *intc_, lines.sensor,
                                     config.seed ^ 0x5e5e5e, &top_);
  ipu_ = std::make_unique<Ipu>(sched_, "ipu", *intc_, lines.ipu,
                               config.ipu_per_image, &top_);
  ipu_->faults().skip_irq = config.fault_skip_irq;
  ipu_->faults().slow_factor = std::max(1u, config.fault_slow_factor);
  lcdc_ = std::make_unique<Lcdc>(sched_, "lcdc", sim::Time::us(50), &top_);
  tmr1_ = std::make_unique<Timer>(sched_, "tmr1", *intc_, lines.timer2 + 1,
                                  &top_);
  tmr2_ = std::make_unique<Timer>(sched_, "tmr2", *intc_, lines.timer2,
                                  &top_);
  lock_ = std::make_unique<Lock>(sched_, "lock", &top_);

  // Bus wiring.
  bus_.set_latency(sim::Time::ns(2));
  bus_.map(kMemBase, kMemSize, mem_->socket());
  bus_.map(kIpuBase, kDeviceWindow, ipu_->socket());
  bus_.map(kSenBase, kDeviceWindow, sensor_->socket());
  bus_.map(kLcdcBase, kDeviceWindow, lcdc_->socket());
  bus_.map(kIntcBase, kDeviceWindow, intc_->socket());
  bus_.map(kTmr1Base, kDeviceWindow, tmr1_->socket());
  bus_.map(kTmr2Base, kDeviceWindow, tmr2_->socket());
  bus_.map(kGpioBase, kDeviceWindow, gpio_->socket());
  bus_.map(kLockBase, kDeviceWindow, lock_->socket());
  sensor_->dma().bind(bus_.target_socket());
  ipu_->dma().bind(bus_.target_socket());
  lcdc_->dma().bind(bus_.target_socket());

  Cpu::AddressMap map;
  map.gpio = kGpioBase;
  map.sensor = kSenBase;
  map.ipu = kIpuBase;
  map.intc = kIntcBase;
  map.timer2 = kTmr2Base;
  map.lock = kLockBase;
  map.lcdc = kLcdcBase;
  map.image_buffer = kImageBuffer;
  map.gallery_base = kGalleryBase;
  cpu_ = std::make_unique<Cpu>(sched_, "cpu", map, lines,
                               config.gallery_size, config.seed ^ 0xc0ffee,
                               &top_);
  cpu_->faults().skip_glsize_write = config.fault_skip_glsize;
  cpu_->faults().early_start = config.fault_early_start;
  cpu_->socket().bind(bus_.target_socket());
  cpu_->attach_irq(intc_->cpu_irq());

  observer_ = std::make_unique<IpuObserver>(*ipu_, names_,
                                            [this] { return sched_.now(); });
  observer_->add_sink([this](spec::Name name, sim::Time time) {
    recorder_.record(name, time);
  });

  preload_gallery();
  sched_.spawn(testbench(), "top.testbench");
}

void AccessControlPlatform::preload_gallery() {
  support::Rng gallery_rng(config_.seed ^ 0x9a11e7);
  for (std::uint32_t k = 0; k < config_.gallery_size; ++k) {
    std::vector<std::uint8_t> face(Ipu::kImageBytes);
    for (auto& b : face) b = static_cast<std::uint8_t>(gallery_rng.below(256));
    mem_->poke(kGalleryBase + k * Ipu::kImageBytes, face);
  }
}

sim::Process AccessControlPlatform::testbench() {
  for (std::size_t press = 0; press < config_.button_presses; ++press) {
    co_await sched_.wait(config_.press_interval);
    // Every match_every-th visitor is an enrolled face: stage a probe equal
    // to a gallery entry (plus slight noise below the match threshold).
    if (config_.match_every != 0 && (press % config_.match_every) == 0 &&
        config_.gallery_size > 0) {
      const std::uint32_t idx = static_cast<std::uint32_t>(
          rng_.below(config_.gallery_size));
      auto face = mem_->peek(kGalleryBase + idx * Ipu::kImageBytes,
                             Ipu::kImageBytes);
      for (std::size_t b = 0; b < 4; ++b) {
        face[b] = static_cast<std::uint8_t>(face[b] ^ 1);  // tiny deviation
      }
      sensor_->stage_image(face);
    } else {
      std::vector<std::uint8_t> stranger(Ipu::kImageBytes);
      for (auto& b : stranger) {
        b = static_cast<std::uint8_t>(rng_.below(256));
      }
      sensor_->stage_image(stranger);
    }
    gpio_->press_button();
  }
}

sim::Time AccessControlPlatform::run(sim::Time limit) {
  return sched_.run(limit);
}

}  // namespace loom::plat

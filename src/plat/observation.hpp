// Observation adapter: turns the IPU's bus traffic into the interface
// events of the paper's §3 without modifying the models (non-intrusive
// ABV).
//
//   register writes on the IPU target socket -> set_imgAddr / set_glAddr /
//                                               set_glSize / start
//   reads issued on the IPU initiator socket -> read_img
//   the IPU interrupt tap                    -> set_irq
//
// Events are stamped with the current simulation time, fanned out to every
// attached sink (monitor modules, trace recorders), and counted.
#pragma once

#include <functional>

#include "plat/ipu.hpp"
#include "sim/trace_capture.hpp"
#include "spec/alphabet.hpp"

namespace loom::plat {

/// Interned names of the IPU interface events.
struct IpuInterface {
  spec::Name set_imgAddr, set_glAddr, set_glSize, start;  // inputs
  spec::Name read_img, set_irq;                           // outputs

  /// Declares the names (with directions) in `ab`.
  static IpuInterface declare(spec::Alphabet& ab);
};

class IpuObserver {
 public:
  using Sink = std::function<void(spec::Name, sim::Time)>;

  /// Hooks the adapter onto the IPU's sockets and irq; `now` supplies the
  /// simulation time stamp (usually [&sched]{ return sched.now(); }).
  IpuObserver(Ipu& ipu, const IpuInterface& names,
              std::function<sim::Time()> now);

  /// Adds a sink receiving every observed interface event.
  void add_sink(Sink sink) { sinks_.push_back(std::move(sink)); }

  /// Routes every observed event through a kernel-level capture (ids are
  /// the interned spec::Name values); the capture's own sinks — monitor
  /// modules, abv::TraceRecorder via abv::attach() — see them from there.
  void attach(sim::TraceCapture& capture);

  std::uint64_t events_observed() const { return count_; }

 private:
  void emit(spec::Name name);

  IpuInterface names_;
  std::function<sim::Time()> now_;
  std::vector<Sink> sinks_;
  std::uint64_t count_ = 0;
};

}  // namespace loom::plat

#include "plat/lock.hpp"

namespace loom::plat {

Lock::Lock(sim::Scheduler& scheduler, std::string name, sim::Module* parent)
    : sim::Module(scheduler, std::move(name), parent),
      socket_(full_name() + ".socket") {
  socket_.bind(*this);
}

void Lock::b_transport(tlm::Payload& trans, sim::Time& delay) {
  delay += sim::Time::ns(5);
  if (trans.length() != 4) {
    trans.set_response(tlm::Response::GenericError);
    return;
  }
  switch (trans.address()) {
    case kCtrl: {
      if (trans.command() != tlm::Command::Write) {
        trans.set_response(tlm::Response::CommandError);
        return;
      }
      const bool want_open = trans.get_u32() == 1;
      if (want_open && !open_) ++open_count_;
      open_ = want_open;
      break;
    }
    case kStatus:
      if (trans.command() != tlm::Command::Read) {
        trans.set_response(tlm::Response::CommandError);
        return;
      }
      trans.set_u32(open_ ? 1 : 0);
      break;
    default:
      trans.set_response(tlm::Response::AddressError);
      return;
  }
  trans.set_response(tlm::Response::Ok);
}

}  // namespace loom::plat

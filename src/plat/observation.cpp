#include "plat/observation.hpp"

namespace loom::plat {

IpuInterface IpuInterface::declare(spec::Alphabet& ab) {
  IpuInterface names;
  names.set_imgAddr = ab.input("set_imgAddr");
  names.set_glAddr = ab.input("set_glAddr");
  names.set_glSize = ab.input("set_glSize");
  names.start = ab.input("start");
  names.read_img = ab.output("read_img");
  names.set_irq = ab.output("set_irq");
  return names;
}

IpuObserver::IpuObserver(Ipu& ipu, const IpuInterface& names,
                         std::function<sim::Time()> now)
    : names_(names), now_(std::move(now)) {
  ipu.socket().add_observer([this](const tlm::Payload& p, sim::Time) {
    if (p.command() != tlm::Command::Write || !p.ok()) return;
    switch (p.address()) {
      case Ipu::kImgAddr: emit(names_.set_imgAddr); break;
      case Ipu::kGlAddr: emit(names_.set_glAddr); break;
      case Ipu::kGlSize: emit(names_.set_glSize); break;
      case Ipu::kCtrl:
        if (p.get_u32() == 1) emit(names_.start);
        break;
      default: break;  // status/result reads and unknown offsets: silent
    }
  });
  ipu.dma().add_observer([this](const tlm::Payload& p, sim::Time) {
    if (p.command() == tlm::Command::Read && p.ok()) emit(names_.read_img);
  });
  ipu.add_irq_tap([this] { emit(names_.set_irq); });
}

void IpuObserver::attach(sim::TraceCapture& capture) {
  add_sink([&capture](spec::Name name, sim::Time time) {
    capture.capture(name, time);
  });
}

void IpuObserver::emit(spec::Name name) {
  ++count_;
  const sim::Time t = now_();
  for (const auto& sink : sinks_) sink(name, t);
}

}  // namespace loom::plat

// Door lock actuator (LOCK of Fig. 2).
//
//   0x00 CTRL   (WO)  1 = open, 0 = close
//   0x04 STATUS (RO)  1 while open
#pragma once

#include "sim/module.hpp"
#include "tlm/socket.hpp"

namespace loom::plat {

class Lock final : public sim::Module, public tlm::BlockingTransport {
 public:
  static constexpr std::uint64_t kCtrl = 0x00;
  static constexpr std::uint64_t kStatus = 0x04;

  Lock(sim::Scheduler& scheduler, std::string name,
       sim::Module* parent = nullptr);

  tlm::TargetSocket& socket() { return socket_; }

  bool open() const { return open_; }
  std::uint64_t open_count() const { return open_count_; }

  void b_transport(tlm::Payload& trans, sim::Time& delay) override;

 private:
  tlm::TargetSocket socket_;
  bool open_ = false;
  std::uint64_t open_count_ = 0;
};

}  // namespace loom::plat

#include "plat/memory.hpp"

#include <algorithm>
#include <stdexcept>

namespace loom::plat {

Memory::Memory(sim::Scheduler& scheduler, std::string name, std::size_t bytes,
               sim::Time access_latency, sim::Module* parent)
    : sim::Module(scheduler, std::move(name), parent),
      socket_(full_name() + ".socket"),
      storage_(bytes, 0),
      latency_(access_latency) {
  socket_.bind(*this);
}

void Memory::b_transport(tlm::Payload& trans, sim::Time& delay) {
  delay += latency_;
  const std::uint64_t addr = trans.address();
  if (addr + trans.length() > storage_.size()) {
    trans.set_response(tlm::Response::AddressError);
    return;
  }
  switch (trans.command()) {
    case tlm::Command::Write:
      std::copy(trans.data().begin(), trans.data().end(),
                storage_.begin() + static_cast<long>(addr));
      ++writes_;
      break;
    case tlm::Command::Read:
      std::copy(storage_.begin() + static_cast<long>(addr),
                storage_.begin() + static_cast<long>(addr + trans.length()),
                trans.data().begin());
      ++reads_;
      break;
    case tlm::Command::Ignore:
      break;
  }
  trans.set_response(tlm::Response::Ok);
}

void Memory::poke(std::uint64_t address,
                  const std::vector<std::uint8_t>& bytes) {
  if (address + bytes.size() > storage_.size()) {
    throw std::out_of_range("Memory::poke past end of memory");
  }
  std::copy(bytes.begin(), bytes.end(),
            storage_.begin() + static_cast<long>(address));
}

std::vector<std::uint8_t> Memory::peek(std::uint64_t address,
                                       std::size_t length) const {
  if (address + length > storage_.size()) {
    throw std::out_of_range("Memory::peek past end of memory");
  }
  return {storage_.begin() + static_cast<long>(address),
          storage_.begin() + static_cast<long>(address + length)};
}

}  // namespace loom::plat

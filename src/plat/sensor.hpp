// Image sensor (SEN of Fig. 2): on a capture command it writes one image
// into memory over the bus (taking exposure + transfer time) and raises its
// interrupt line.
//
//   0x00 CTRL     (WO)  1 = capture
//   0x04 STATUS   (RO)  0 idle, 1 busy, 2 done
//   0x08 DST_ADDR (RW)  memory destination of the captured image
#pragma once

#include "plat/intc.hpp"
#include "sim/module.hpp"
#include "support/rng.hpp"
#include "tlm/socket.hpp"

namespace loom::plat {

class Sensor final : public sim::Module, public tlm::BlockingTransport {
 public:
  static constexpr std::uint64_t kCtrl = 0x00;
  static constexpr std::uint64_t kStatus = 0x04;
  static constexpr std::uint64_t kDstAddr = 0x08;

  static constexpr std::size_t kImageBytes = 64;

  Sensor(sim::Scheduler& scheduler, std::string name, Intc& intc,
         unsigned irq_line, std::uint64_t seed,
         sim::Module* parent = nullptr);

  tlm::TargetSocket& socket() { return socket_; }
  tlm::InitiatorSocket& dma() { return dma_; }

  /// The image the next capture will produce (testbench control: matching
  /// or non-matching faces).
  void stage_image(const std::vector<std::uint8_t>& pixels);

  std::uint64_t captures() const { return captures_; }

  void b_transport(tlm::Payload& trans, sim::Time& delay) override;

 private:
  sim::Process capture_process();

  tlm::TargetSocket socket_;
  tlm::InitiatorSocket dma_;
  Intc& intc_;
  unsigned irq_line_;
  sim::Event capture_requested_;
  support::Rng rng_;
  std::vector<std::uint8_t> staged_;
  std::uint32_t status_ = 0;
  std::uint32_t dst_addr_ = 0;
  std::uint64_t captures_ = 0;
};

}  // namespace loom::plat

// LCD controller (LCDC of Fig. 2): when enabled, periodically reads the
// framebuffer region from memory (display refresh) and counts frames.  Its
// main role in the reproduction is to keep realistic concurrent bus traffic
// flowing next to the IPU.
//
//   0x00 CTRL    (RW)  1 = enable refresh
//   0x04 FB_ADDR (RW)  framebuffer base
//   0x08 FRAMES  (RO)  refresh counter
#pragma once

#include "sim/module.hpp"
#include "tlm/socket.hpp"

namespace loom::plat {

class Lcdc final : public sim::Module, public tlm::BlockingTransport {
 public:
  static constexpr std::uint64_t kCtrl = 0x00;
  static constexpr std::uint64_t kFbAddr = 0x04;
  static constexpr std::uint64_t kFrames = 0x08;

  static constexpr std::size_t kFramebufferBytes = 128;

  Lcdc(sim::Scheduler& scheduler, std::string name,
       sim::Time refresh_period = sim::Time::us(50),
       sim::Module* parent = nullptr);

  tlm::TargetSocket& socket() { return socket_; }
  tlm::InitiatorSocket& dma() { return dma_; }

  std::uint32_t frames() const { return frames_; }

  void b_transport(tlm::Payload& trans, sim::Time& delay) override;

 private:
  sim::Process refresh_process();

  tlm::TargetSocket socket_;
  tlm::InitiatorSocket dma_;
  sim::Time period_;
  bool enabled_ = false;
  std::uint32_t fb_addr_ = 0;
  std::uint32_t frames_ = 0;
};

}  // namespace loom::plat

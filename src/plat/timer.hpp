// Programmable one-shot timer (TMR1 / TMR2 of Fig. 2).
//
//   0x00 LOAD_NS (RW)  timeout in nanoseconds
//   0x04 CTRL    (WO)  1 = start (restarts if running), 0 = cancel
//   0x08 STATUS  (RO)  1 while running
// On expiry the timer raises its interrupt line.
#pragma once

#include <cstdint>

#include "plat/intc.hpp"
#include "sim/module.hpp"
#include "tlm/socket.hpp"

namespace loom::plat {

class Timer final : public sim::Module, public tlm::BlockingTransport {
 public:
  static constexpr std::uint64_t kLoadNs = 0x00;
  static constexpr std::uint64_t kCtrl = 0x04;
  static constexpr std::uint64_t kStatus = 0x08;

  Timer(sim::Scheduler& scheduler, std::string name, Intc& intc,
        unsigned irq_line, sim::Module* parent = nullptr);

  tlm::TargetSocket& socket() { return socket_; }

  void b_transport(tlm::Payload& trans, sim::Time& delay) override;

  bool running() const { return running_; }
  std::uint64_t expirations() const { return expirations_; }

 private:
  void start();

  tlm::TargetSocket socket_;
  Intc& intc_;
  unsigned irq_line_;
  sim::Event expiry_;
  std::uint32_t load_ns_ = 0;
  bool running_ = false;
  std::uint64_t expirations_ = 0;
};

}  // namespace loom::plat

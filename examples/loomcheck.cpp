// loomcheck: offline trace checker — the library as a command-line tool.
//
// See kUsage below for the interface.  Properties are compiled once each
// (mon::CompiledProperty); --backend picks the monitor construction, with
// `auto` delegating to the psl::cost_model choice per property.
//
// Exit status: 0 when every property passes, 1 on any violation, 2 on
// usage/parse errors.  With no arguments, runs a built-in demo.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "abv/campaign.hpp"
#include "abv/checker.hpp"
#include "abv/trace.hpp"
#include "mon/compiled.hpp"
#include "mon/vm.hpp"
#include "support/args.hpp"
#include "spec/export.hpp"
#include "spec/parser.hpp"
#include "spec/wellformed.hpp"

namespace {

using namespace loom;

// The one usage text: --help, the unknown-option path and the no-argument
// demo all print this same string, so they cannot drift apart.
constexpr const char* kUsage =
    "usage: loomcheck PROPERTIES.lo TRACE.txt [options]\n"
    "\n"
    "  PROPERTIES.lo  one property per line ('#' comments allowed), e.g.\n"
    "      (({set_imgAddr, set_glAddr, set_glSize}, &) << start, false)\n"
    "      (start => read_img[1,60000] < set_irq, 2ms)\n"
    "  TRACE.txt      one \"name@picoseconds\" entry per line (the format\n"
    "                 written by abv::to_text and the platform recorder)\n"
    "\n"
    "options:\n"
    "  --backend=auto|drct|viapsl|vm  monitor construction (default auto:\n"
    "                              per-property psl::cost_model choice;\n"
    "                              vm runs the compiled bytecode backend)\n"
    "  --psl                       shorthand for --backend=viapsl\n"
    "  --incremental=on|off        exercise the checkpoint snapshot/restore\n"
    "                              machinery while replaying (default off;\n"
    "                              a self-check — result-identical by the\n"
    "                              mon::Snapshot contract)\n"
    "  --checkpoint-stride=N       events between snapshot round-trips\n"
    "                              (default 64, N >= 1)\n"
    "  --lanes=N                   lane-batched self-check (default 1: off;\n"
    "                              N >= 1): replay the trace through N\n"
    "                              lockstep VmLaneBatch lanes per vm-backed\n"
    "                              property and cross-check every lane\n"
    "                              against a solo monitor — the wave\n"
    "                              machinery behind the campaign engine's\n"
    "                              --lanes, exercised live on this trace\n"
    "  --dot OUT.dot               write the first property's syntax tree\n"
    "  --worker [--worker-timeout-ms=N]  hidden: speak the campaign worker\n"
    "                              wire protocol on stdin/stdout; N bounds\n"
    "                              the wait for the request frame (0 = off)\n"
    "  --help                      print this text and exit\n"
    "\n"
    "exit status: 0 all properties pass, 1 violation found, 2 usage/parse\n"
    "error; with no arguments a built-in demo runs instead.\n";

std::optional<std::string> slurp(const char* path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

int run_demo() {
  std::printf("%s\nrunning the built-in demo instead:\n\n", kUsage);
  spec::Alphabet ab;
  support::DiagnosticSink sink;
  auto p = spec::parse_property("(({cfg_a, cfg_b}, &) << go, true)", ab, sink);
  auto monitor = mon::CompiledProperty::compile(*p, ab).instantiate();
  const char* events[] = {"cfg_b", "cfg_a", "go", "cfg_a", "go"};
  sim::Time now;
  for (const char* name : events) {
    now += sim::Time::ns(5);
    std::printf("  observe %-8s", name);
    monitor->observe(ab.name(name), now);
    std::printf("-> %s\n", mon::to_string(monitor->verdict()));
  }
  if (monitor->violation()) {
    std::printf("  %s\n", monitor->violation()->to_string(ab).c_str());
  }
  return 0;
}

int usage_error(const char* fmt, const char* what) {
  std::fprintf(stderr, fmt, what);
  std::fprintf(stderr, "\n%s", kUsage);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  // Hidden worker mode: when a cross-process campaign execs this binary
  // (CampaignOptions::worker_command = {"loomcheck", "--worker"}), it
  // speaks the versioned wire protocol on stdin/stdout and exits with the
  // pinned worker codes.  Checked before anything else — a worker must
  // never print usage text into its frame stream.
  if (argc >= 2 && std::strcmp(argv[1], "--worker") == 0) {
    // Optional request deadline: an exec'd worker whose parent dies before
    // writing the request frame exits (code 3) instead of blocking on
    // stdin forever.  Bad values exit 2 like every other flag, but onto
    // stderr only — the frame stream on stdout stays clean.
    std::size_t request_timeout_ms = 0;
    for (int k = 2; k < argc; ++k) {
      if (std::strncmp(argv[k], "--worker-timeout-ms=", 20) == 0) {
        const auto parsed = support::parse_nonneg(argv[k] + 20);
        if (!parsed) {
          std::fprintf(stderr,
                       "bad --worker-timeout-ms value (want a count, 0 = "
                       "off): %s\n",
                       argv[k] + 20);
          return 2;
        }
        request_timeout_ms = *parsed;
      } else {
        std::fprintf(stderr, "unknown --worker option: %s\n", argv[k]);
        return 2;
      }
    }
    return abv::run_campaign_worker(0, 1, request_timeout_ms);
  }
  for (int k = 1; k < argc; ++k) {
    if (std::strcmp(argv[k], "--help") == 0) {
      std::printf("%s", kUsage);
      return 0;
    }
  }
  if (argc < 3) return run_demo();

  mon::Backend backend = mon::Backend::Auto;
  const char* dot_path = nullptr;
  // Off by default: the round-trip is a self-check of the checkpoint
  // machinery, not something a plain trace check should pay for.
  bool incremental = false;
  std::size_t checkpoint_stride = 64;
  std::size_t lanes = 1;
  for (int k = 3; k < argc; ++k) {
    if (std::strcmp(argv[k], "--psl") == 0) {
      backend = mon::Backend::ViaPSL;
    } else if (std::strncmp(argv[k], "--backend=", 10) == 0) {
      const auto parsed = mon::parse_backend(argv[k] + 10);
      if (!parsed) return usage_error("bad backend: %s\n", argv[k] + 10);
      backend = *parsed;
    } else if (std::strncmp(argv[k], "--incremental=", 14) == 0) {
      const auto parsed = support::parse_on_off(argv[k] + 14);
      if (!parsed) {
        return usage_error("bad --incremental value (want on|off): %s\n",
                           argv[k] + 14);
      }
      incremental = *parsed;
    } else if (std::strncmp(argv[k], "--checkpoint-stride=", 20) == 0) {
      const auto parsed = support::parse_positive(argv[k] + 20);
      if (!parsed) {
        return usage_error(
            "bad --checkpoint-stride value (want a positive count): %s\n",
            argv[k] + 20);
      }
      checkpoint_stride = *parsed;
    } else if (std::strncmp(argv[k], "--lanes=", 8) == 0) {
      const auto parsed = support::parse_positive(argv[k] + 8);
      if (!parsed) {
        return usage_error("bad --lanes value (want a positive count): %s\n",
                           argv[k] + 8);
      }
      lanes = *parsed;
    } else if (std::strcmp(argv[k], "--dot") == 0 && k + 1 < argc) {
      dot_path = argv[++k];
    } else {
      return usage_error("unknown option: %s\n", argv[k]);
    }
  }

  const auto prop_text = slurp(argv[1]);
  const auto trace_text = slurp(argv[2]);
  if (!prop_text || !trace_text) {
    return usage_error("cannot read %s\n", !prop_text ? argv[1] : argv[2]);
  }

  spec::Alphabet ab;
  std::vector<spec::Property> properties;
  std::vector<std::string> lines_kept;

  std::istringstream lines(*prop_text);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(lines, line)) {
    ++line_no;
    const auto first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] == '#') continue;
    support::DiagnosticSink sink;
    auto p = spec::parse_property(line, ab, sink);
    if (!p || !spec::check_wellformed(*p, ab, sink)) {
      std::fprintf(stderr, "%s:%zu: bad property:\n%s\n", argv[1], line_no,
                   sink.to_string().c_str());
      return 2;
    }
    properties.push_back(*p);
    lines_kept.push_back(line);
  }
  if (properties.empty()) {
    return usage_error("%s: no properties\n", argv[1]);
  }

  // Translate each property exactly once, then stamp its monitor; with
  // `auto` the cost model may pick a different side per property.  A
  // forced --backend=viapsl can be untranslatable (shape or clause
  // budget): that is a usage error, not a crash.
  abv::Checker checker;
  mon::CompileOptions copt;
  copt.backend = backend;
  bool any_viapsl = false;
  // With --lanes=N > 1: the vm-backed properties' programs, kept for the
  // lane-batched self-check after the plain replay.
  std::vector<std::pair<std::size_t, std::shared_ptr<const mon::VmProgram>>>
      vm_programs;
  for (std::size_t i = 0; i < properties.size(); ++i) {
    try {
      auto compiled = mon::CompiledProperty::compile(properties[i], ab, copt);
      any_viapsl = any_viapsl || compiled.chosen() == mon::Backend::ViaPSL;
      if (lanes > 1 && compiled.chosen() == mon::Backend::Vm) {
        vm_programs.emplace_back(i, compiled.vm_program_shared());
      }
      checker.add(lines_kept[i] + "  [" + mon::to_string(compiled.chosen()) +
                      "]",
                  compiled.instantiate());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s: cannot compile for backend %s: %s\n",
                   lines_kept[i].c_str(), mon::to_string(backend), e.what());
      return 2;
    }
  }

  support::DiagnosticSink trace_sink;
  auto trace = abv::from_text(*trace_text, ab, trace_sink);
  if (!trace) {
    std::fprintf(stderr, "%s: bad trace:\n%s\n", argv[2],
                 trace_sink.to_string().c_str());
    return 2;
  }

  if (dot_path != nullptr) {
    std::ofstream dot(dot_path);
    dot << spec::to_dot(properties.front(), ab);
    std::printf("wrote %s (syntax tree of the first property)\n", dot_path);
  }

  // With --incremental=on the replay snapshot/restores every monitor each
  // `checkpoint_stride` events — the checkpoint machinery the campaign
  // engine's suffix-only replay builds on, exercised live on this trace;
  // the verdicts are identical either way by the snapshot contract.
  checker.run(*trace,
              trace->empty() ? sim::Time::zero() : trace->back().time,
              incremental ? checkpoint_stride : 0);
  std::printf("%zu events checked against %zu properties (backend %s%s)\n\n",
              trace->size(), checker.size(), mon::to_string(backend),
              backend == mon::Backend::Auto
                  ? (any_viapsl ? ", resolved per property" : ", all drct")
                  : "");
  // Lane-batched self-check: every vm-backed property's trace replayed
  // through N lockstep lanes must land on the exact bytes of a solo
  // monitor — the eighth engine invariant (lane-batched ≡ scalar), live
  // on this trace.
  if (lanes > 1 && !vm_programs.empty()) {
    bool lanes_identical = true;
    for (const auto& [index, program] : vm_programs) {
      mon::VmMonitor solo(program);
      for (const auto& ev : *trace) solo.observe(ev.name, ev.time);
      const sim::Time end =
          trace->empty() ? sim::Time::zero() : trace->back().time;
      solo.finish(end);

      mon::VmLaneBatch batch(program, lanes);
      const std::vector<const spec::Trace*> ptrs(lanes, &*trace);
      for (std::size_t l = 0; l < lanes; ++l) batch.reset(l);
      batch.run(ptrs);
      for (std::size_t l = 0; l < lanes; ++l) {
        batch.finish(l, end);
        const bool same =
            batch.verdict(l) == solo.verdict() &&
            batch.stats(l).ops == solo.stats().ops &&
            batch.violation(l).has_value() == solo.violation().has_value();
        if (!same) {
          std::fprintf(stderr,
                       "lane self-check MISMATCH: property %zu lane %zu "
                       "disagrees with the solo monitor\n",
                       index, l);
          lanes_identical = false;
        }
      }
    }
    std::printf("\nlane self-check: %zu lockstep lanes × %zu vm %s — %s\n",
                lanes, vm_programs.size(),
                vm_programs.size() == 1 ? "property" : "properties",
                lanes_identical ? "bit-identical to solo replay"
                                : "MISMATCH (bug!)");
    if (!lanes_identical) return 1;
  }

  std::printf("%s", checker.summary(ab).c_str());
  return checker.all_passing() ? 0 : 1;
}

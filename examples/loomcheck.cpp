// loomcheck: offline trace checker — the library as a command-line tool.
//
//   loomcheck PROPERTIES.lo TRACE.txt [--psl] [--dot OUT.dot]
//
// PROPERTIES.lo holds one property per line ('#' comments allowed), e.g.
//     (({set_imgAddr, set_glAddr, set_glSize}, &) << start, false)
//     (start => read_img[1,60000] < set_irq, 2ms)
// TRACE.txt holds one "name@picoseconds" entry per line (the format
// written by abv::to_text and by the platform's trace recorder).
//
// Exit status: 0 when every property passes, 1 on any violation, 2 on
// usage/parse errors.  With no arguments, runs a built-in demo.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "abv/checker.hpp"
#include "abv/trace.hpp"
#include "mon/monitors.hpp"
#include "psl/clause_monitor.hpp"
#include "spec/export.hpp"
#include "spec/parser.hpp"
#include "spec/wellformed.hpp"

namespace {

using namespace loom;

std::optional<std::string> slurp(const char* path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

int run_demo() {
  std::printf(
      "usage: loomcheck PROPERTIES.lo TRACE.txt [--psl] [--dot OUT.dot]\n\n"
      "running the built-in demo instead:\n\n");
  spec::Alphabet ab;
  support::DiagnosticSink sink;
  auto p = spec::parse_property("(({cfg_a, cfg_b}, &) << go, true)", ab, sink);
  auto monitor = mon::make_monitor(*p);
  const char* events[] = {"cfg_b", "cfg_a", "go", "cfg_a", "go"};
  sim::Time now;
  for (const char* name : events) {
    now += sim::Time::ns(5);
    std::printf("  observe %-8s", name);
    monitor->observe(ab.name(name), now);
    std::printf("-> %s\n", mon::to_string(monitor->verdict()));
  }
  if (monitor->violation()) {
    std::printf("  %s\n", monitor->violation()->to_string(ab).c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return run_demo();

  bool use_psl = false;
  const char* dot_path = nullptr;
  for (int k = 3; k < argc; ++k) {
    if (std::strcmp(argv[k], "--psl") == 0) {
      use_psl = true;
    } else if (std::strcmp(argv[k], "--dot") == 0 && k + 1 < argc) {
      dot_path = argv[++k];
    } else {
      std::fprintf(stderr, "unknown option: %s\n", argv[k]);
      return 2;
    }
  }

  const auto prop_text = slurp(argv[1]);
  const auto trace_text = slurp(argv[2]);
  if (!prop_text || !trace_text) {
    std::fprintf(stderr, "cannot read %s\n", !prop_text ? argv[1] : argv[2]);
    return 2;
  }

  spec::Alphabet ab;
  abv::Checker checker;
  std::vector<spec::Property> properties;

  std::istringstream lines(*prop_text);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(lines, line)) {
    ++line_no;
    const auto first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] == '#') continue;
    support::DiagnosticSink sink;
    auto p = spec::parse_property(line, ab, sink);
    if (!p || !spec::check_wellformed(*p, ab, sink)) {
      std::fprintf(stderr, "%s:%zu: bad property:\n%s\n", argv[1], line_no,
                   sink.to_string().c_str());
      return 2;
    }
    properties.push_back(*p);
    if (use_psl) {
      checker.add(line, std::make_unique<psl::ClauseMonitor>(
                            psl::encode(*p, 2000000, &ab)));
    } else {
      checker.add(line, mon::make_monitor(*p));
    }
  }
  if (properties.empty()) {
    std::fprintf(stderr, "%s: no properties\n", argv[1]);
    return 2;
  }

  support::DiagnosticSink trace_sink;
  auto trace = abv::from_text(*trace_text, ab, trace_sink);
  if (!trace) {
    std::fprintf(stderr, "%s: bad trace:\n%s\n", argv[2],
                 trace_sink.to_string().c_str());
    return 2;
  }

  if (dot_path != nullptr) {
    std::ofstream dot(dot_path);
    dot << spec::to_dot(properties.front(), ab);
    std::printf("wrote %s (syntax tree of the first property)\n", dot_path);
  }

  checker.run(*trace, trace->empty() ? sim::Time::zero()
                                     : trace->back().time);
  std::printf("%zu events checked against %zu properties (%s monitors)\n\n",
              trace->size(), checker.size(), use_psl ? "ViaPSL" : "Drct");
  std::printf("%s", checker.summary(ab).c_str());
  return checker.all_passing() ? 0 : 1;
}

// Drct vs ViaPSL on one property: print the generated PSL conjuncts, run
// both monitors on the same trace, and compare verdicts and costs — a
// miniature of the paper's Figure 6 experiment.
//
//   $ ./examples/psl_comparison
#include <cstdio>

#include "abv/stimuli.hpp"
#include "mon/monitors.hpp"
#include "psl/clause_monitor.hpp"
#include "psl/cost_model.hpp"
#include "spec/parser.hpp"

int main() {
  using namespace loom;
  spec::Alphabet ab;
  support::DiagnosticSink sink;
  auto property =
      spec::parse_property("(({a, b}, &) < c[2,4] << i, true)", ab, sink);
  if (!property) {
    std::fprintf(stderr, "%s\n", sink.to_string().c_str());
    return 1;
  }
  std::printf("property: %s\n\n", spec::to_string(*property, ab).c_str());

  // The §5 translation, conjunct by conjunct.
  psl::Encoding enc = psl::encode(*property, 2000000, &ab);
  std::printf("PSL encoding: %zu tokens, %zu conjuncts\n",
              enc.vocab.token_count(), enc.clauses.size());
  for (const auto& clause : enc.clauses) {
    std::printf("  [%-8s] %s\n", psl::to_string(clause.kind),
                psl::to_string(clause.formula, enc.vocab.texts()).c_str());
  }

  // Same stimuli through both monitors.
  support::Rng rng(11);
  abv::StimuliOptions opt;
  opt.rounds = 20;
  const spec::Trace trace = abv::generate_valid(*property, ab, rng, opt);

  auto drct = mon::make_monitor(*property);
  psl::ClauseMonitor viapsl(enc);
  for (const auto& ev : trace) {
    drct->observe(ev.name, ev.time);
    viapsl.observe(ev.name, ev.time);
  }
  drct->finish(trace.back().time);
  viapsl.finish(trace.back().time);

  std::printf("\n%zu-event valid trace:\n", trace.size());
  std::printf("  Drct   -> %-10s  %8.1f ops/event, %6zu bits of state\n",
              mon::to_string(drct->verdict()), drct->stats().ops_per_event(),
              drct->space_bits());
  std::printf("  ViaPSL -> %-10s  %8.1f ops/event, %6zu bits of state\n",
              mon::to_string(viapsl.verdict()),
              viapsl.stats().ops_per_event(), viapsl.space_bits());

  // What the paper's explosive rows look like under the analytic model.
  spec::Alphabet ab2;
  support::DiagnosticSink sink2;
  auto huge = spec::parse_property("(n[100,60K] << i, true)", ab2, sink2);
  const psl::PslCost cost = psl::estimate(*huge);
  auto drct_huge = mon::make_monitor(*huge);
  std::printf(
      "\n%s:\n  Drct monitor: %zu bits; ViaPSL encoding (analytic): %llu "
      "conjuncts, %.2e ops/event, %.2e bits\n",
      spec::to_string(*huge, ab2).c_str(), drct_huge->space_bits(),
      static_cast<unsigned long long>(cost.clauses),
      static_cast<double>(cost.ops_per_token),
      static_cast<double>(cost.total_bits()));
  return 0;
}

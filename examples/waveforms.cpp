// Dump the case-study simulation to a VCD waveform: the IPU interface
// events as strobes, the lock state and the INTC pending lines as wires —
// open run.vcd in GTKWave next to the monitor verdict to see exactly when
// a property fires.
//
//   $ ./examples/waveforms [out.vcd]
#include <cstdio>
#include <fstream>

#include "mon/monitors.hpp"
#include "plat/platform.hpp"
#include "sim/vcd.hpp"
#include "spec/parser.hpp"

int main(int argc, char** argv) {
  using namespace loom;
  const char* path = argc > 1 ? argv[1] : "run.vcd";

  plat::PlatformConfig cfg;
  cfg.button_presses = 3;
  cfg.fault_skip_glsize = true;  // make the monitor fire
  plat::AccessControlPlatform platform(cfg);
  auto& ab = platform.alphabet();

  std::ofstream out(path);
  sim::VcdWriter vcd(out, platform.scheduler());

  // One event strobe per interface name.
  std::vector<sim::VcdWriter::Var> strobes;
  const char* names[] = {"set_imgAddr", "set_glAddr", "set_glSize",
                         "start",       "read_img",   "set_irq"};
  for (const char* n : names) {
    strobes.push_back(vcd.add_event(std::string("ipu_interface.") + n));
  }
  auto violated = vcd.add_wire("monitor.example2_violated", 1);
  vcd.change(violated, 0);

  support::DiagnosticSink sink;
  auto p2 = spec::parse_property(
      "(({set_imgAddr, set_glAddr, set_glSize}, &) << start, false)", ab,
      sink);
  mon::AntecedentMonitor monitor(p2->antecedent());
  mon::MonitorModule module(platform.scheduler(), "monitor", monitor, ab);
  module.on_violation([&](const mon::Violation& v) {
    vcd.change(violated, 1);
    std::printf("violation: %s\n", v.to_string(ab).c_str());
  });

  platform.observer().add_sink([&](spec::Name name, sim::Time t) {
    for (std::size_t k = 0; k < 6; ++k) {
      if (name == *ab.lookup(names[k])) vcd.strobe(strobes[k]);
    }
    module.observe(name, t);
  });

  const sim::Time end = platform.run(sim::Time::ms(10));
  module.finish();
  vcd.finish();
  std::printf("simulated %s; wrote %s (%zu variables)\n",
              end.to_string().c_str(), path, vcd.variable_count());
  std::printf("Example 2 verdict: %s\n", mon::to_string(monitor.verdict()));
  return 0;
}

// The paper's Fig. 1 verification loop at scale: a batch of properties run
// through the sharded campaign engine, serial first and then on a
// work-stealing pool — same bits out, less wall-clock in.
//
//   $ ./examples/parallel_campaign [threads] [seeds] [auto|drct|viapsl]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "abv/campaign.hpp"
#include "spec/parser.hpp"
#include "support/args.hpp"

int main(int argc, char** argv) {
  using namespace loom;
  const std::size_t threads = support::parse_count(
      argc, argv, 1, std::max(1u, std::thread::hardware_concurrency()));
  const std::size_t seeds = support::parse_count(argc, argv, 2, 24);
  const auto backend = mon::parse_backend_arg(argc, argv, 3);
  if (!backend) {
    std::fprintf(stderr,
                 "bad backend '%s' (want auto, drct or viapsl)\n"
                 "usage: %s [threads] [seeds] [auto|drct|viapsl]\n",
                 argv[3], argv[0]);
    return 2;
  }

  // The access-control flavoured property set of the evaluation.
  const char* sources[] = {
      "(({set_imgAddr, set_glAddr, set_glSize}, &) << start, false)",
      "(({n1, n2}, &) < ({n3[2,8], n4}, |) < n5 << i, true)",
      "(p[2,3] => q[1,4] < r, 1ms)",
      "(n << i, true)",
  };

  spec::Alphabet ab;
  std::vector<spec::Property> properties;
  for (const char* source : sources) {
    support::DiagnosticSink sink;
    auto p = spec::parse_property(source, ab, sink);
    if (!p) {
      std::fprintf(stderr, "parse error in %s:\n%s\n", source,
                   sink.to_string().c_str());
      return 1;
    }
    properties.push_back(*p);
  }
  std::vector<const spec::Property*> ptrs;
  for (const auto& p : properties) ptrs.push_back(&p);

  abv::CampaignOptions opt;
  opt.seeds = seeds;
  opt.stimuli.rounds = 5;
  opt.stimuli.noise_permille = 100;
  opt.mutants_per_kind = 16;
  opt.shard_size = 1;
  opt.backend = *backend;

  // Show what the campaigns will execute: each property's translate-once
  // plan, rendered through the plan's own interned alphabet snapshot (no
  // shared-Alphabet access needed once a plan exists).
  const auto plans = abv::compile_property_plans(ptrs, ab, opt);
  for (const auto& plan : plans) {
    std::string names;
    plan.compiled.alphabet().for_each([&](std::size_t n) {
      if (!names.empty()) names += ", ";
      names += plan.compiled.text_of(static_cast<spec::Name>(n));
    });
    std::printf("plan %zu: backend %s, %zu-name alphabet {%s}\n",
                plan.index, mon::to_string(plan.compiled.chosen()),
                plan.compiled.alphabet().count(), names.c_str());
  }
  std::printf("\n");

  const auto timed = [&](std::size_t t) {
    opt.threads = t;
    const auto begin = std::chrono::steady_clock::now();
    auto results = abv::run_campaigns(ptrs, ab, opt);
    const auto end = std::chrono::steady_clock::now();
    return std::make_pair(std::move(results),
                          std::chrono::duration<double>(end - begin).count());
  };

  std::printf("running %zu campaigns × %zu seeds, serial baseline...\n",
              properties.size(), seeds);
  const auto [serial, serial_s] = timed(1);
  std::printf("running the same campaigns on %zu threads...\n\n", threads);
  const auto [parallel, parallel_s] = timed(threads);

  bool identical = true;
  for (std::size_t i = 0; i < properties.size(); ++i) {
    std::printf("--- %s\n%s\n", sources[i],
                parallel[i].report(ab).c_str());
    identical =
        identical && serial[i].report(ab) == parallel[i].report(ab);
  }

  std::size_t stamped = 0;
  std::size_t reused = 0;
  for (const auto& r : parallel) {
    stamped += r.compile_stats.instances_stamped;
    reused += r.compile_stats.instance_reuses;
  }
  std::printf(
      "compiled plans: %zu properties translated once each; "
      "%zu instances stamped, %zu reset-reused\n",
      properties.size(), stamped, reused);
  std::printf("serial:   %7.1f ms\n", serial_s * 1e3);
  std::printf("parallel: %7.1f ms  (%.2fx on %zu threads)\n",
              parallel_s * 1e3, serial_s / parallel_s, threads);
  std::printf("determinism: %s\n",
              identical ? "parallel run bit-identical to serial"
                        : "MISMATCH (bug!)");
  return identical ? 0 : 1;
}

// The paper's Fig. 1 verification loop at scale: a batch of properties run
// through the sharded campaign engine, serial first and then on a
// work-stealing pool — same bits out, less wall-clock in.
//
//   $ ./examples/parallel_campaign [threads] [seeds] [auto|drct|viapsl|vm]
//                                  [--incremental=on|off]
//                                  [--checkpoint-stride=N] [--lanes=N]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "abv/campaign.hpp"
#include "spec/parser.hpp"
#include "support/args.hpp"

namespace {

constexpr const char* kUsage =
    "usage: parallel_campaign [threads] [seeds] [auto|drct|viapsl|vm]\n"
    "                         [--incremental=on|off] [--checkpoint-stride=N]\n"
    "                         [--lanes=N]\n"
    "                         [--workers=N] [--worker-timeout-ms=N]\n"
    "                         [--worker-retries=N] [--allow-partial=on|off]\n"
    "\n"
    "  threads              worker threads for the parallel run (default:\n"
    "                       hardware concurrency)\n"
    "  seeds                seeds per campaign (default 24)\n"
    "  backend              monitor construction (default auto)\n"
    "  --incremental=on|off checkpointed suffix-only mutant replay\n"
    "                       (default on; result-neutral — the runs stay\n"
    "                       bit-identical either way)\n"
    "  --checkpoint-stride=N  events between checkpoint snapshots on each\n"
    "                       valid trace (default 32, N >= 1)\n"
    "  --lanes=N            mutant-wave width for the lane-batched VM replay\n"
    "                       (default 8, N >= 1; 1 = the scalar per-mutant\n"
    "                       loop; result-neutral — the runs stay\n"
    "                       bit-identical at every width; widths > 1 need\n"
    "                       the vm or auto backend)\n"
    "  --workers=N          additionally run the campaigns across N worker\n"
    "                       subprocesses (exec'd copies of this binary\n"
    "                       speaking the wire format on pipes) and compare\n"
    "                       against the in-process runs (default 0: skip)\n"
    "  --worker-timeout-ms=N  supervision deadline per worker frame; a\n"
    "                       worker that stalls longer is killed and retried\n"
    "                       (default 0: wait forever)\n"
    "  --worker-retries=N   fresh re-dispatches of a failed worker's shards\n"
    "                       before giving up (default 0)\n"
    "  --allow-partial=on|off  absorb exhausted workers as a degraded\n"
    "                       result instead of failing the run (default off)\n"
    "  --help               print this text and exit\n"
    "\n"
    "exit status: 0 all runs bit-identical, 1 mismatch, 2 usage error.\n";

int usage_error(const char* fmt, const char* what) {
  std::fprintf(stderr, fmt, what);
  std::fprintf(stderr, "\n%s", kUsage);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace loom;
  // Hidden worker mode: the --workers=N run execs this same binary with
  // --worker; the child speaks the wire protocol on stdin/stdout.
  if (argc >= 2 && std::strcmp(argv[1], "--worker") == 0) {
    return abv::run_campaign_worker(0, 1);
  }
  // Flags may appear anywhere; positionals keep their order.
  bool incremental = true;
  std::size_t checkpoint_stride = 32;
  std::size_t lanes = 8;
  std::size_t workers = 0;
  std::size_t worker_timeout_ms = 0;
  std::size_t worker_retries = 0;
  bool allow_partial = false;
  std::vector<char*> positional = {argv[0]};
  for (int k = 1; k < argc; ++k) {
    if (std::strcmp(argv[k], "--help") == 0) {
      std::printf("%s", kUsage);
      return 0;
    } else if (std::strncmp(argv[k], "--workers=", 10) == 0) {
      const auto parsed = support::parse_positive(argv[k] + 10);
      if (!parsed) {
        return usage_error("bad --workers value (want a positive count): %s\n",
                           argv[k] + 10);
      }
      workers = *parsed;
    } else if (std::strncmp(argv[k], "--worker-timeout-ms=", 20) == 0) {
      const auto parsed = support::parse_nonneg(argv[k] + 20);
      if (!parsed) {
        return usage_error(
            "bad --worker-timeout-ms value (want a count, 0 = off): %s\n",
            argv[k] + 20);
      }
      worker_timeout_ms = *parsed;
    } else if (std::strncmp(argv[k], "--worker-retries=", 17) == 0) {
      const auto parsed = support::parse_nonneg(argv[k] + 17);
      if (!parsed) {
        return usage_error(
            "bad --worker-retries value (want a count, 0 = off): %s\n",
            argv[k] + 17);
      }
      worker_retries = *parsed;
    } else if (std::strncmp(argv[k], "--allow-partial=", 16) == 0) {
      const auto parsed = support::parse_on_off(argv[k] + 16);
      if (!parsed) {
        return usage_error("bad --allow-partial value (want on|off): %s\n",
                           argv[k] + 16);
      }
      allow_partial = *parsed;
    } else if (std::strncmp(argv[k], "--incremental=", 14) == 0) {
      const auto parsed = support::parse_on_off(argv[k] + 14);
      if (!parsed) {
        return usage_error("bad --incremental value (want on|off): %s\n",
                           argv[k] + 14);
      }
      incremental = *parsed;
    } else if (std::strncmp(argv[k], "--checkpoint-stride=", 20) == 0) {
      const auto parsed = support::parse_positive(argv[k] + 20);
      if (!parsed) {
        return usage_error(
            "bad --checkpoint-stride value (want a positive count): %s\n",
            argv[k] + 20);
      }
      checkpoint_stride = *parsed;
    } else if (std::strncmp(argv[k], "--lanes=", 8) == 0) {
      const auto parsed = support::parse_positive(argv[k] + 8);
      if (!parsed) {
        return usage_error("bad --lanes value (want a positive count): %s\n",
                           argv[k] + 8);
      }
      lanes = *parsed;
    } else if (std::strncmp(argv[k], "--", 2) == 0) {
      return usage_error("unknown option: %s\n", argv[k]);
    } else {
      positional.push_back(argv[k]);
    }
  }
  const int pos_argc = static_cast<int>(positional.size());
  char** pos_argv = positional.data();
  // A present-but-malformed positional ("5x", "99999999999999999999") is a
  // usage error, not a silent fallback to the default.
  const auto threads_arg = support::parse_count(
      pos_argc, pos_argv, 1, std::max(1u, std::thread::hardware_concurrency()));
  if (!threads_arg) {
    return usage_error("bad threads '%s' (want a positive count)\n",
                       pos_argv[1]);
  }
  const std::size_t threads = *threads_arg;
  const auto seeds_arg = support::parse_count(pos_argc, pos_argv, 2, 24);
  if (!seeds_arg) {
    return usage_error("bad seeds '%s' (want a positive count)\n", pos_argv[2]);
  }
  const std::size_t seeds = *seeds_arg;
  const auto backend = mon::parse_backend_arg(pos_argc, pos_argv, 3);
  if (!backend) {
    return usage_error("bad backend '%s' (want auto, drct, viapsl or vm)\n",
                       pos_argv[3]);
  }

  // The access-control flavoured property set of the evaluation.
  const char* sources[] = {
      "(({set_imgAddr, set_glAddr, set_glSize}, &) << start, false)",
      "(({n1, n2}, &) < ({n3[2,8], n4}, |) < n5 << i, true)",
      "(p[2,3] => q[1,4] < r, 1ms)",
      "(n << i, true)",
  };

  spec::Alphabet ab;
  std::vector<spec::Property> properties;
  for (const char* source : sources) {
    support::DiagnosticSink sink;
    auto p = spec::parse_property(source, ab, sink);
    if (!p) {
      std::fprintf(stderr, "parse error in %s:\n%s\n", source,
                   sink.to_string().c_str());
      return 1;
    }
    properties.push_back(*p);
  }
  std::vector<const spec::Property*> ptrs;
  for (const auto& p : properties) ptrs.push_back(&p);

  abv::CampaignOptions opt;
  opt.seeds = seeds;
  opt.stimuli.rounds = 5;
  opt.stimuli.noise_permille = 100;
  opt.mutants_per_kind = 16;
  opt.shard_size = 1;
  opt.backend = *backend;
  opt.incremental_replay = incremental;
  opt.checkpoint_stride = checkpoint_stride;
  // Catch the contradiction here as a usage error (exit 2) instead of
  // letting run_campaigns throw it mid-run.
  if (lanes > 1 && (*backend == mon::Backend::Drct ||
                    *backend == mon::Backend::ViaPSL)) {
    return usage_error(
        "--lanes > 1 needs the vm or auto backend, got: %s\n",
        mon::to_string(*backend));
  }
  opt.lane_width = lanes;

  // Show what the campaigns will execute: each property's translate-once
  // plan, rendered through the plan's own interned alphabet snapshot (no
  // shared-Alphabet access needed once a plan exists).
  const auto plans = abv::compile_property_plans(ptrs, ab, opt);
  for (const auto& plan : plans) {
    std::string names;
    plan.compiled.alphabet().for_each([&](std::size_t n) {
      if (!names.empty()) names += ", ";
      names += plan.compiled.text_of(static_cast<spec::Name>(n));
    });
    std::printf("plan %zu: backend %s, %zu-name alphabet {%s}\n",
                plan.index, mon::to_string(plan.compiled.chosen()),
                plan.compiled.alphabet().count(), names.c_str());
  }
  std::printf("\n");

  const auto timed = [&](std::size_t t) {
    opt.threads = t;
    const auto begin = std::chrono::steady_clock::now();
    auto results = abv::run_campaigns(ptrs, ab, opt);
    const auto end = std::chrono::steady_clock::now();
    return std::make_pair(std::move(results),
                          std::chrono::duration<double>(end - begin).count());
  };

  std::printf("running %zu campaigns × %zu seeds, serial baseline...\n",
              properties.size(), seeds);
  const auto [serial, serial_s] = timed(1);
  std::printf("running the same campaigns on %zu threads...\n\n", threads);
  const auto [parallel, parallel_s] = timed(threads);

  bool identical = true;
  for (std::size_t i = 0; i < properties.size(); ++i) {
    std::printf("--- %s\n%s\n", sources[i],
                parallel[i].report(ab).c_str());
    identical =
        identical && serial[i].report(ab) == parallel[i].report(ab);
  }

  // Optional third leg: the same campaigns sharded across exec'd worker
  // subprocesses of this very binary — the sixth invariant live on the
  // command line.
  if (workers > 0) {
    std::printf("running the same campaigns across %zu worker processes...\n",
                workers);
    opt.threads = threads;
    opt.workers = workers;
    opt.worker_command = {argv[0], "--worker"};
    opt.worker_timeout_ms = worker_timeout_ms;
    opt.worker_retries = worker_retries;
    opt.allow_partial = allow_partial;
    const auto begin = std::chrono::steady_clock::now();
    std::vector<abv::CampaignResult> cross;
    try {
      cross = abv::run_campaigns(ptrs, ab, opt);
    } catch (const abv::WorkerFailure& e) {
      std::fprintf(stderr, "worker failure: %s\n", e.what());
      return 1;
    }
    const auto end = std::chrono::steady_clock::now();
    bool cross_identical = true;
    bool degraded = false;
    for (std::size_t i = 0; i < properties.size(); ++i) {
      cross_identical =
          cross_identical && serial[i].report(ab) == cross[i].report(ab);
      degraded = degraded || cross[i].degraded();
    }
    if (degraded) {
      // An absorbed worker loss: say which shards never ran (the reports
      // cannot match the serial leg, so don't count that as the bug).
      for (std::size_t i = 0; i < properties.size(); ++i) {
        if (cross[i].degraded()) {
          std::printf("--- %s (degraded)\n%s\n", sources[i],
                      cross[i].report(ab).c_str());
        }
      }
    }
    std::printf("cross-process: %7.1f ms on %zu workers — %s\n\n",
                std::chrono::duration<double>(end - begin).count() * 1e3,
                workers,
                degraded         ? "DEGRADED (shards lost, see above)"
                : cross_identical ? "bit-identical to the serial run"
                                  : "MISMATCH (bug!)");
    identical = identical && (cross_identical || degraded);
    opt.workers = 0;
    opt.worker_command.clear();
  }

  std::size_t stamped = 0;
  std::size_t reused = 0;
  std::size_t checkpoint_hits = 0;
  std::size_t events_skipped = 0;
  std::size_t events_stepped = 0;
  std::size_t lane_waves = 0;
  std::size_t lanes_filled = 0;
  std::size_t lane_capacity = 0;
  for (const auto& r : parallel) {
    stamped += r.compile_stats.instances_stamped;
    reused += r.compile_stats.instance_reuses;
    checkpoint_hits += r.checkpoint_hits;
    events_skipped += r.events_skipped;
    events_stepped += static_cast<std::size_t>(r.monitor_stats.events);
    lane_waves += static_cast<std::size_t>(r.lane_waves);
    lanes_filled += static_cast<std::size_t>(r.lanes_filled);
    lane_capacity += static_cast<std::size_t>(r.lane_capacity);
  }
  std::printf(
      "compiled plans: %zu properties translated once each; "
      "%zu instances stamped, %zu reset-reused\n",
      properties.size(), stamped, reused);
  if (incremental) {
    // Guard the denominator: a zero-seed / empty-trace campaign steps and
    // skips nothing, and "0%" beats printing nan.
    const std::size_t replayable = events_skipped + events_stepped;
    std::printf(
        "incremental replay (stride %zu): %zu checkpoint restores skipped "
        "%zu prefix events (%.0f%% of the %zu the monitors would have "
        "stepped)\n",
        checkpoint_stride, checkpoint_hits, events_skipped,
        replayable == 0 ? 0.0
                        : 100.0 * static_cast<double>(events_skipped) /
                              static_cast<double>(replayable),
        replayable);
  }
  if (lane_waves > 0) {
    std::printf(
        "lane-batched waves (width %zu): %zu waves, %zu/%zu lanes filled "
        "(%.0f%% occupancy)\n",
        lanes, lane_waves, lanes_filled, lane_capacity,
        lane_capacity == 0 ? 0.0
                           : 100.0 * static_cast<double>(lanes_filled) /
                                 static_cast<double>(lane_capacity));
  }
  std::printf("serial:   %7.1f ms\n", serial_s * 1e3);
  std::printf("parallel: %7.1f ms  (%.2fx on %zu threads)\n",
              parallel_s * 1e3, serial_s / parallel_s, threads);
  std::printf("determinism: %s\n",
              identical ? "parallel run bit-identical to serial"
                        : "MISMATCH (bug!)");
  return identical ? 0 : 1;
}

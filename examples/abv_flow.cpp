// The full ABV loop of the paper's Fig. 1 — and its §8 "further work" —
// offline: generate random stimuli *from the property*, check them with
// both monitor families (Drct and ViaPSL), measure coverage, then inject
// mutations and watch the monitors catch them.
//
//   $ ./examples/abv_flow [seed]
#include <cstdio>
#include <cstdlib>

#include "abv/checker.hpp"
#include "abv/coverage.hpp"
#include "abv/mutate.hpp"
#include "abv/stimuli.hpp"
#include "mon/monitors.hpp"
#include "psl/clause_monitor.hpp"
#include "spec/parser.hpp"

int main(int argc, char** argv) {
  using namespace loom;
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;

  spec::Alphabet ab;
  support::DiagnosticSink sink;
  auto property = spec::parse_property(
      "(({n1, n2}, &) < ({n3[2,8], n4}, |) < n5 << i, true)", ab, sink);
  if (!property) {
    std::fprintf(stderr, "%s\n", sink.to_string().c_str());
    return 1;
  }
  std::printf("property under test: %s\n\n",
              spec::to_string(*property, ab).c_str());

  // --- 1. stimuli generation (paper §8 future work) ---
  support::Rng rng(seed);
  abv::StimuliOptions options;
  options.rounds = 5;
  options.noise_permille = 150;  // irrelevant traffic the monitors ignore
  const spec::Trace stimuli = abv::generate_valid(*property, ab, rng, options);
  std::printf("generated %zu events (with noise), e.g.:", stimuli.size());
  for (std::size_t k = 0; k < std::min<std::size_t>(10, stimuli.size()); ++k) {
    std::printf(" %s", ab.text(stimuli[k].name).c_str());
  }
  std::printf(" ...\n");

  // --- 2. check with both monitor families + coverage ---
  mon::AntecedentMonitor drct(property->antecedent());
  abv::RecognizerCoverage recognizer_cov(drct);
  abv::AlphabetCoverage alphabet_cov(property->alphabet());

  abv::Checker checker;
  checker.add("viapsl", std::make_unique<psl::ClauseMonitor>(
                            psl::encode(*property)));
  for (const auto& ev : stimuli) {
    drct.observe(ev.name, ev.time);
    recognizer_cov.sample();
    alphabet_cov.record(ev.name);
    checker.observe(ev.name, ev.time);
  }
  drct.finish(stimuli.back().time);
  checker.finish(stimuli.back().time);

  std::printf("\nvalid stimuli: drct=%s, %s\n",
              mon::to_string(drct.verdict()),
              checker.summary(ab).c_str());
  std::printf("%s\n", alphabet_cov.report(ab).c_str());
  std::printf("%s\n\n", recognizer_cov.report(ab).c_str());

  // --- 3. mutation campaign: inject violations, count detections ---
  const abv::MutationKind kinds[] = {
      abv::MutationKind::Drop, abv::MutationKind::Duplicate,
      abv::MutationKind::SwapAdjacent, abv::MutationKind::EarlyTrigger};
  for (const auto kind : kinds) {
    std::size_t tried = 0, invalid = 0, detected = 0;
    for (int round = 0; round < 40; ++round) {
      auto mutant = abv::mutate(stimuli, kind, *property, rng);
      if (!mutant) continue;
      ++tried;
      const sim::Time end = mutant->trace.back().time;
      const auto ref = spec::reference_check(*property, mutant->trace, end);
      if (!ref.rejected()) continue;  // mutation happened to stay legal
      ++invalid;
      auto monitor = mon::make_monitor(*property);
      for (const auto& ev : mutant->trace) monitor->observe(ev.name, ev.time);
      monitor->finish(end);
      if (monitor->verdict() == mon::Verdict::Violated) ++detected;
    }
    std::printf("mutation %-14s: %2zu applied, %2zu invalid, %2zu detected "
                "by the monitor\n",
                abv::to_string(kind), tried, invalid, detected);
  }
  return 0;
}

// Quickstart: write a loose-ordering property, monitor a trace, read the
// verdict.
//
//   $ ./examples/quickstart
//
// Walks through the three core steps of the library:
//   1. parse a property over your component's interface names,
//   2. build the Drct monitor (the paper's efficient SystemC encoding),
//   3. feed it observed events and inspect verdict / diagnostics / cost.
#include <cstdio>

#include "mon/monitors.hpp"
#include "spec/parser.hpp"
#include "spec/wellformed.hpp"

int main() {
  using namespace loom;

  // 1. The interface alphabet and a property: before `start` may occur,
  //    all three configuration inputs must have been written, in any order
  //    (the paper's Example 2).
  spec::Alphabet ab;
  support::DiagnosticSink diagnostics;
  auto property = spec::parse_property(
      "(({set_imgAddr, set_glAddr, set_glSize}, &) << start, false)", ab,
      diagnostics);
  if (!property || !spec::check_wellformed(*property, ab, diagnostics)) {
    std::fprintf(stderr, "property error:\n%s\n",
                 diagnostics.to_string().c_str());
    return 1;
  }
  std::printf("property: %s\n", spec::to_string(*property, ab).c_str());

  // 2. The Drct monitor.
  auto monitor = mon::make_monitor(*property);
  std::printf("monitor state: %zu bits\n", monitor->space_bits());

  // 3. A well-behaved trace: configuration in a scrambled order, then start.
  const char* good_events[] = {"set_glSize", "set_imgAddr", "set_glAddr",
                               "start"};
  sim::Time now;
  for (const char* name : good_events) {
    now += sim::Time::ns(10);
    monitor->observe(*ab.lookup(name), now);
  }
  monitor->finish(now);
  std::printf("well-behaved trace  -> %s\n",
              mon::to_string(monitor->verdict()));

  // ... and a buggy one: start fires before the gallery size was set.
  monitor->reset();
  const char* bad_events[] = {"set_imgAddr", "set_glAddr", "start"};
  now = sim::Time();
  for (const char* name : bad_events) {
    now += sim::Time::ns(10);
    monitor->observe(*ab.lookup(name), now);
  }
  monitor->finish(now);
  std::printf("buggy trace         -> %s\n",
              mon::to_string(monitor->verdict()));
  if (monitor->violation()) {
    std::printf("  %s\n", monitor->violation()->to_string(ab).c_str());
  }

  std::printf("monitor cost: %.1f ops/event (max %llu on one event)\n",
              monitor->stats().ops_per_event(),
              static_cast<unsigned long long>(
                  monitor->stats().max_ops_per_event));
  return 0;
}

// The paper's case study end-to-end: simulate the face-recognition access
// control platform (Fig. 2) with the Example 2 and Example 3 monitors
// attached, in a nominal run and in four fault-injected runs.
//
//   $ ./examples/access_control
#include <cstdio>

#include "mon/monitors.hpp"
#include "plat/platform.hpp"
#include "spec/parser.hpp"

namespace {

using namespace loom;

constexpr const char* kExample2 =
    "(({set_imgAddr, set_glAddr, set_glSize}, &) << start, false)";
constexpr const char* kExample3 =
    "(start => read_img[1,60000] < set_irq, 2ms)";

void run_scenario(const char* title, const plat::PlatformConfig& cfg) {
  plat::AccessControlPlatform platform(cfg);
  auto& ab = platform.alphabet();

  support::DiagnosticSink sink;
  auto p2 = spec::parse_property(kExample2, ab, sink);
  auto p3 = spec::parse_property(kExample3, ab, sink);
  mon::AntecedentMonitor example2(p2->antecedent());
  mon::TimedImplicationMonitor example3(p3->timed());
  mon::MonitorModule mod2(platform.scheduler(), "mon_ex2", example2, ab);
  mon::MonitorModule mod3(platform.scheduler(), "mon_ex3", example3, ab);
  mod2.on_violation([&](const mon::Violation& v) {
    std::printf("  !! Example 2 %s\n", v.to_string(ab).c_str());
  });
  mod3.on_violation([&](const mon::Violation& v) {
    std::printf("  !! Example 3 %s\n", v.to_string(ab).c_str());
  });
  platform.observer().add_sink([&](spec::Name n, sim::Time t) {
    mod2.observe(n, t);
    mod3.observe(n, t);
  });

  std::printf("== %s ==\n", title);
  const sim::Time end = platform.run(sim::Time::ms(20));
  mod2.finish();
  mod3.finish();

  std::printf(
      "  simulated %s | rounds %llu | matches %llu | door opened %llu times "
      "| IPU reads %llu | LCDC frames %u\n",
      end.to_string().c_str(),
      static_cast<unsigned long long>(platform.cpu().rounds_completed()),
      static_cast<unsigned long long>(platform.cpu().matches()),
      static_cast<unsigned long long>(platform.lock().open_count()),
      static_cast<unsigned long long>(platform.ipu().gallery_reads()),
      platform.lcdc().frames());
  std::printf("  Example 2 -> %s | Example 3 -> %s\n",
              mon::to_string(example2.verdict()),
              mon::to_string(example3.verdict()));
  std::printf("  observed %llu interface events\n\n",
              static_cast<unsigned long long>(
                  platform.observer().events_observed()));
}

}  // namespace

int main() {
  plat::PlatformConfig nominal;
  nominal.button_presses = 4;
  run_scenario("nominal firmware and IPU", nominal);

  plat::PlatformConfig skip = nominal;
  skip.fault_skip_glsize = true;
  run_scenario("buggy firmware: set_glSize forgotten", skip);

  plat::PlatformConfig early = nominal;
  early.fault_early_start = true;
  run_scenario("buggy firmware: start before configuration", early);

  plat::PlatformConfig noirq = nominal;
  noirq.button_presses = 1;
  noirq.fault_skip_irq = true;
  run_scenario("buggy IPU: completion interrupt dropped", noirq);

  plat::PlatformConfig slow = nominal;
  slow.button_presses = 1;
  slow.fault_slow_factor = 400;
  run_scenario("buggy IPU: 400x slower than specified", slow);
  return 0;
}

#!/usr/bin/env python3
"""Markdown link checker for the docs CI job.

Scans the given markdown files (or the repo's default set) for inline
links/images `[text](target)` and reference definitions `[id]: target`,
and verifies that every *relative* target exists on disk (anchors are
stripped; http(s)/mailto targets are skipped — CI must not depend on the
network).  Exits non-zero listing every broken link.

Usage: tools/check_markdown_links.py [FILE.md ...]
"""
import re
import sys
from pathlib import Path

INLINE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
REFDEF = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)", re.MULTILINE)
SKIP = ("http://", "https://", "mailto:", "#")

DEFAULT_SET = ["README.md", "ROADMAP.md", "PAPER.md", "PAPERS.md",
               "CHANGES.md", "ISSUE.md"]


def targets_of(text: str):
    # Fenced code blocks routinely contain `[...](...)`-shaped text that
    # is not a link; drop them before scanning.
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    for match in INLINE.finditer(text):
        yield match.group(1)
    for match in REFDEF.finditer(text):
        yield match.group(1)


def main(argv):
    root = Path(__file__).resolve().parent.parent
    if len(argv) > 1:
        files = [Path(a) for a in argv[1:]]
    else:
        files = [root / name for name in DEFAULT_SET if (root / name).exists()]
        files += sorted((root / "docs").rglob("*.md"))

    broken = []
    checked = 0
    for path in files:
        text = path.read_text(encoding="utf-8")
        for target in targets_of(text):
            if target.startswith(SKIP):
                continue
            checked += 1
            resolved = (path.parent / target.split("#", 1)[0]).resolve()
            if not resolved.exists():
                broken.append(f"{path}: broken link -> {target}")

    for line in broken:
        print(line, file=sys.stderr)
    print(f"checked {checked} relative links in {len(files)} files, "
          f"{len(broken)} broken")
    return 1 if broken else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

#!/usr/bin/env python3
"""Regenerate the tracked BENCH_*.json perf baselines.

Runs the headline benchmark shapes and normalizes their
--benchmark_format=json output into two committed snapshots:

  BENCH_campaign.json   bench_throughput: BM_CampaignMutationHeavy,
                        BM_CampaignIncremental, BM_CampaignManyProperties,
                        BM_CampaignLaneBatch, BM_WorkerSupervision
  BENCH_scaling.json    bench_scaling: the threads sweep (pinned args)

Each snapshot carries a machine fingerprint (cpu count, build type,
pinned --benchmark_min_time, git sha) so tools/bench_compare.py can tell
"comparable" from "recorded on different hardware" — a mismatched
fingerprint is a skip, never a silently wrong comparison.

Usage:
    python3 tools/bench_record.py [--build-dir build] [--out-dir .]
                                  [--min-time 0.05]

The rule of the perf trajectory: any PR that claims a speedup (or touches
a hot path) regenerates these baselines in the same commit, so the claim
is a diffable number the CI bench-gate holds every later PR to.
"""

import argparse
import json
import os
import re
import subprocess
import sys

# Every field google-benchmark emits per entry that is *not* a user
# counter.  Anything numeric outside this set is treated as a counter and
# becomes part of the tracked baseline schema.
NON_COUNTER_FIELDS = {
    "name", "family_index", "per_family_instance_index", "run_name",
    "run_type", "repetitions", "repetition_index", "threads", "iterations",
    "real_time", "cpu_time", "time_unit", "label", "aggregate_name",
    "aggregate_unit", "error_occurred", "error_message",
}

# The headline campaign shapes: deterministic fixtures (fixed seeds, fixed
# unit counts), so every counter in the snapshot is reproducible and only
# the wall times carry machine noise.  BM_WireRoundTrip rides along: the
# wire codec is the floor under cross-process sharding, so its frame rate
# and allocs/frame are part of the tracked trajectory.  BM_WorkerSupervision
# pins the supervised (poll-based) drain against the legacy blocking drain
# so the supervision overhead stays a diffable number.  BM_CampaignLaneBatch
# sweeps CampaignOptions::lane_width over the mutation-heavy VM shape, so
# the wave engine's wall/unit and lane_occupancy are tracked per width.
CAMPAIGN_FILTER = (
    "^(BM_CampaignMutationHeavy|BM_CampaignIncremental|"
    "BM_CampaignManyProperties|BM_CampaignLaneBatch|"
    "BM_WireRoundTrip|BM_WorkerSupervision)/"
)

# Pinned threads-sweep arguments: 4 threads, 8 seeds, auto backend,
# stride 32.  Bounded runtime, same shape everywhere.
SCALING_ARGS = ["4", "8", "auto", "32"]

TIME_UNIT_TO_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def run_json(cmd):
    """Runs a benchmark binary and parses the JSON document on stdout."""
    proc = subprocess.run(cmd, stdout=subprocess.PIPE, check=True)
    return json.loads(proc.stdout.decode())


def normalize(doc):
    """Reduces a google-benchmark JSON document to the tracked schema."""
    benchmarks = []
    for entry in doc.get("benchmarks", []):
        if entry.get("run_type", "iteration") != "iteration":
            continue  # aggregates (mean/stddev) are derived, not tracked
        scale = TIME_UNIT_TO_NS[entry.get("time_unit", "ns")]
        counters = {
            key: value
            for key, value in sorted(entry.items())
            if key not in NON_COUNTER_FIELDS
            and isinstance(value, (int, float))
        }
        benchmarks.append({
            "name": entry["name"],
            "label": entry.get("label", ""),
            "real_time_ns": entry["real_time"] * scale,
            "counters": counters,
        })
    benchmarks.sort(key=lambda b: b["name"])
    return benchmarks


def build_type(build_dir):
    cache = os.path.join(build_dir, "CMakeCache.txt")
    try:
        with open(cache, encoding="utf-8") as fh:
            for line in fh:
                match = re.match(r"CMAKE_BUILD_TYPE:\w+=(.*)", line.strip())
                if match:
                    return match.group(1) or "unknown"
    except OSError:
        pass
    return "unknown"


def git_sha(repo_dir):
    try:
        out = subprocess.run(
            ["git", "-C", repo_dir, "rev-parse", "--short", "HEAD"],
            stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, check=True)
        return out.stdout.decode().strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def fingerprint(args, source, num_cpus):
    return {
        # Compared by bench_compare.py — a mismatch means the runs are not
        # comparable and the gate skips instead of guessing:
        "num_cpus": num_cpus,
        "build_type": build_type(args.build_dir),
        "benchmark_min_time": args.min_time,
        # Informational only (always differs between baseline and fresh):
        "git_sha": git_sha(os.path.dirname(os.path.abspath(__file__))),
        "source": source,
    }


def write_snapshot(path, fp, benchmarks):
    doc = {"schema": 1, "fingerprint": fp, "benchmarks": benchmarks}
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {path} ({len(benchmarks)} benchmarks)")


def main():
    parser = argparse.ArgumentParser(
        description="Regenerate the tracked BENCH_*.json perf baselines.")
    parser.add_argument("--build-dir", default="build",
                        help="CMake build directory with the bench binaries")
    parser.add_argument("--out-dir", default=".",
                        help="where to write BENCH_campaign/scaling.json")
    parser.add_argument("--min-time", default="0.05",
                        help="--benchmark_min_time for bench_throughput "
                             "(pinned; part of the fingerprint)")
    parser.add_argument("--skip-scaling", action="store_true",
                        help="only regenerate BENCH_campaign.json")
    args = parser.parse_args()

    throughput = os.path.join(args.build_dir, "bench_throughput")
    scaling = os.path.join(args.build_dir, "bench_scaling")
    for binary in [throughput] + ([] if args.skip_scaling else [scaling]):
        if not os.path.exists(binary):
            sys.exit(f"error: {binary} not built "
                     f"(cmake --build {args.build_dir} first)")
    os.makedirs(args.out_dir, exist_ok=True)

    doc = run_json([
        throughput,
        f"--benchmark_filter={CAMPAIGN_FILTER}",
        f"--benchmark_min_time={args.min_time}",
        "--benchmark_format=json",
    ])
    num_cpus = doc.get("context", {}).get("num_cpus", os.cpu_count() or 1)
    write_snapshot(os.path.join(args.out_dir, "BENCH_campaign.json"),
                   fingerprint(args, "bench_throughput", num_cpus),
                   normalize(doc))

    if not args.skip_scaling:
        doc = run_json([scaling, *SCALING_ARGS, "--benchmark_format=json"])
        num_cpus = doc.get("context", {}).get("num_cpus", os.cpu_count() or 1)
        write_snapshot(os.path.join(args.out_dir, "BENCH_scaling.json"),
                       fingerprint(args, "bench_scaling", num_cpus),
                       normalize(doc))


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Diff a fresh benchmark snapshot against a committed BENCH_*.json baseline.

    python3 tools/bench_compare.py BASELINE.json FRESH.json
                                   [--wall-tolerance 0.35]
                                   [--strict-fingerprint] [--verbose]

Per-metric policy (by counter name — the names are the schema written by
CampaignResult::diagnostic_counters() and the bench binaries):

  wall metrics    real_time_ns, wall/unit — lower is better, gated with
                  --wall-tolerance relative slack (machine noise is real).
  allocation      allocs/unit, allocs/mutant — lower is better and
                  engineered-invariant-adjacent (the zero-allocation steady
                  state): hard fail beyond 10% + 2 allocs of slack.
  ratios          skip_ratio, *_hit_rate, instance_reuse_rate,
                  lane_occupancy, bit_identical — higher is better and
                  deterministic for a given fixture: hard fail on a drop
                  > 0.02 absolute (bit_identical: any drop).
  semantic        backend_viapsl, backend_vm — which monitor construction
                  ran; any change fails, a backend flip is never noise.
  informational   checkpoint_hits, events_skipped, mon_events_per_s,
                  speedup — reported, never gated (absolute counts scale
                  with iteration counts; throughput/speedup are restated
                  wall time).

A fingerprint mismatch (cpu count, build type, pinned min_time) means the
two runs are not comparable: the gate prints a skip annotation and exits 0
(or 1 under --strict-fingerprint).  Exit status: 0 pass/skip, 1 regression
or coverage loss, 2 usage error.
"""

import argparse
import json
import os
import sys

FINGERPRINT_KEYS = ["num_cpus", "build_type", "benchmark_min_time"]

ALLOC_REL_TOL = 0.10
ALLOC_ABS_SLACK = 2.0
RATIO_ABS_TOL = 0.02

INFORMATIONAL = {"checkpoint_hits", "events_skipped", "lane_waves",
                 "mon_events_per_s", "speedup"}
SEMANTIC = {"backend_viapsl", "backend_vm"}


def classify(name):
    """Maps a metric name to its gating policy."""
    if name in ("real_time_ns", "wall/unit"):
        return "wall"
    if name.startswith("allocs/"):
        return "alloc"
    if name == "bit_identical":
        return "exact_ratio"
    if (name == "skip_ratio" or name == "instance_reuse_rate"
            or name == "lane_occupancy" or name.endswith("_hit_rate")):
        return "ratio"
    if name in SEMANTIC:
        return "semantic"
    if name in INFORMATIONAL:
        return "info"
    return "info"  # unknown counters never gate — new ones phase in freely


def judge(policy, base, fresh, wall_tol):
    """Returns (status, detail): status in {ok, improved, FAIL, info}."""
    delta = fresh - base
    if policy == "wall":
        if base > 0 and fresh > base * (1.0 + wall_tol):
            return "FAIL", f"+{100.0 * delta / base:.1f}% > {wall_tol:.0%}"
        if base > 0 and fresh < base * (1.0 - wall_tol):
            return "improved", f"{100.0 * delta / base:+.1f}%"
        return "ok", ""
    if policy == "alloc":
        if fresh > base * (1.0 + ALLOC_REL_TOL) + ALLOC_ABS_SLACK:
            return "FAIL", f"allocs regressed {base:.2f} -> {fresh:.2f}"
        if fresh < base - ALLOC_ABS_SLACK:
            return "improved", f"{base:.2f} -> {fresh:.2f}"
        return "ok", ""
    if policy == "ratio":
        if delta < -RATIO_ABS_TOL:
            return "FAIL", f"dropped {base:.3f} -> {fresh:.3f}"
        if delta > RATIO_ABS_TOL:
            return "improved", f"{base:.3f} -> {fresh:.3f}"
        return "ok", ""
    if policy == "exact_ratio":
        if fresh < base:
            return "FAIL", f"dropped {base:g} -> {fresh:g}"
        return "ok", ""
    if policy == "semantic":
        if fresh != base:
            return "FAIL", f"changed {base:g} -> {fresh:g}"
        return "ok", ""
    return "info", ""


def load(path):
    try:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        sys.exit(f"error: cannot load {path}: {err}")
    if "benchmarks" not in doc:
        sys.exit(f"error: {path} is not a BENCH_*.json snapshot")
    return doc


def fmt(value):
    return f"{value:,.3g}" if abs(value) >= 1000 else f"{value:.4g}"


def main():
    parser = argparse.ArgumentParser(
        description="Gate a fresh benchmark run against a baseline.")
    parser.add_argument("baseline")
    parser.add_argument("fresh")
    parser.add_argument("--wall-tolerance", type=float, default=0.35,
                        help="relative slack for wall metrics (default 0.35)")
    parser.add_argument("--strict-fingerprint", action="store_true",
                        help="fail instead of skip on fingerprint mismatch")
    parser.add_argument("--verbose", action="store_true",
                        help="print every metric row, not just changes")
    args = parser.parse_args()

    base_doc = load(args.baseline)
    fresh_doc = load(args.fresh)

    base_fp = base_doc.get("fingerprint", {})
    fresh_fp = fresh_doc.get("fingerprint", {})
    mismatched = [k for k in FINGERPRINT_KEYS
                  if base_fp.get(k) != fresh_fp.get(k)]
    if mismatched:
        detail = ", ".join(
            f"{k}: {base_fp.get(k)!r} vs {fresh_fp.get(k)!r}"
            for k in mismatched)
        print(f"**SKIP** — fingerprint mismatch ({detail}); "
              "runs are not comparable.")
        if os.environ.get("GITHUB_ACTIONS"):
            print(f"::notice title=bench-gate skipped::"
                  f"fingerprint mismatch: {detail}")
        sys.exit(1 if args.strict_fingerprint else 0)

    base_by_name = {b["name"]: b for b in base_doc["benchmarks"]}
    fresh_by_name = {b["name"]: b for b in fresh_doc["benchmarks"]}

    rows = []
    failures = []
    for name, base in base_by_name.items():
        fresh = fresh_by_name.get(name)
        if fresh is None:
            failures.append(f"`{name}`: present in baseline, missing from "
                            "fresh run (coverage loss)")
            continue
        metrics = [("real_time_ns", base["real_time_ns"],
                    fresh["real_time_ns"])]
        for key, base_value in base["counters"].items():
            if key in fresh["counters"]:
                metrics.append((key, base_value, fresh["counters"][key]))
            else:
                failures.append(f"`{name}`: counter `{key}` vanished from "
                                "the fresh run")
        for key, base_value, fresh_value in metrics:
            policy = classify(key)
            status, detail = judge(policy, base_value, fresh_value,
                                   args.wall_tolerance)
            if status == "FAIL":
                failures.append(f"`{name}` / `{key}`: {detail}")
            if args.verbose or status in ("FAIL", "improved"):
                rows.append((name, key, base_value, fresh_value, status,
                             detail))
    new_names = sorted(set(fresh_by_name) - set(base_by_name))

    print(f"## bench_compare: `{os.path.basename(args.fresh)}` vs "
          f"`{os.path.basename(args.baseline)}`\n")
    print(f"{len(base_by_name)} baseline benchmarks, "
          f"{len(failures)} regression(s), "
          f"wall tolerance ±{args.wall_tolerance:.0%}\n")
    if rows:
        print("| benchmark | metric | baseline | fresh | status |")
        print("|---|---|---:|---:|---|")
        for name, key, base_value, fresh_value, status, detail in rows:
            note = f" ({detail})" if detail else ""
            print(f"| `{name}` | {key} | {fmt(base_value)} | "
                  f"{fmt(fresh_value)} | {status}{note} |")
        print()
    if new_names:
        print("New benchmarks without a baseline (commit a regenerated "
              "snapshot to start tracking them):")
        for name in new_names:
            print(f"- `{name}`")
        print()
    if failures:
        print("### REGRESSIONS\n")
        for failure in failures:
            print(f"- {failure}")
        if os.environ.get("GITHUB_ACTIONS"):
            print(f"::error title=bench-gate::{len(failures)} benchmark "
                  "regression(s); see the bench-gate job log")
        sys.exit(1)
    print("No regressions against the baseline.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Self-test of the bench_compare.py regression gate against the committed
fixture pairs in tools/testdata/bench_compare/ — one per gate verdict:

  fresh_pass                 inside every tolerance            -> exit 0
  fresh_wall_regress         +60% wall on one benchmark        -> exit 1
  fresh_counter_regress      allocs/mutant up, skip_ratio down -> exit 1
  fresh_lane_occupancy_drop  lane_occupancy down > 0.02        -> exit 1
  fresh_fingerprint_mismatch different cpu count               -> exit 0 skip
                             (exit 1 under --strict-fingerprint)
  fresh_missing_benchmark    baseline coverage lost            -> exit 1

Registered in ctest (tools_bench_compare_selftest) and run by the CI
bench-gate job, so the gate itself cannot silently rot.
"""

import os
import subprocess
import sys
import unittest

TOOLS_DIR = os.path.dirname(os.path.abspath(__file__))
COMPARE = os.path.join(TOOLS_DIR, "bench_compare.py")
FIXTURES = os.path.join(TOOLS_DIR, "testdata", "bench_compare")


def run_compare(fresh, *extra):
    return subprocess.run(
        [sys.executable, COMPARE, os.path.join(FIXTURES, "baseline.json"),
         os.path.join(FIXTURES, fresh), *extra],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)


class BenchCompareGate(unittest.TestCase):
    def test_pass_within_tolerances(self):
        proc = run_compare("fresh_pass.json")
        self.assertEqual(proc.returncode, 0, proc.stdout)
        self.assertIn("No regressions", proc.stdout)

    def test_wall_regression_fails(self):
        proc = run_compare("fresh_wall_regress.json")
        self.assertEqual(proc.returncode, 1, proc.stdout)
        self.assertIn("REGRESSIONS", proc.stdout)
        self.assertIn("real_time_ns", proc.stdout)
        # Only the mutation-heavy shape regressed; the incremental one is
        # inside tolerance and must not be flagged.
        self.assertNotIn("BM_CampaignIncremental/1/real_time` / `real_time",
                         proc.stdout)

    def test_wall_tolerance_is_configurable(self):
        proc = run_compare("fresh_wall_regress.json", "--wall-tolerance", "2.0")
        self.assertEqual(proc.returncode, 0, proc.stdout)

    def test_counter_regressions_hard_fail(self):
        proc = run_compare("fresh_counter_regress.json")
        self.assertEqual(proc.returncode, 1, proc.stdout)
        self.assertIn("allocs/mutant", proc.stdout)
        self.assertIn("skip_ratio", proc.stdout)
        # Counter regressions are hard failures: no wall tolerance excuses
        # them.
        proc = run_compare("fresh_counter_regress.json",
                           "--wall-tolerance", "10.0")
        self.assertEqual(proc.returncode, 1, proc.stdout)

    def test_lane_occupancy_drop_fails(self):
        # lane_occupancy is a semantic ratio of the wave engine: a drop
        # beyond 0.02 absolute means waves stopped filling (or stopped
        # running) and fails the gate no matter how good the wall time is.
        proc = run_compare("fresh_lane_occupancy_drop.json")
        self.assertEqual(proc.returncode, 1, proc.stdout)
        self.assertIn("lane_occupancy", proc.stdout)
        proc = run_compare("fresh_lane_occupancy_drop.json",
                           "--wall-tolerance", "10.0")
        self.assertEqual(proc.returncode, 1, proc.stdout)

    def test_fingerprint_mismatch_skips(self):
        proc = run_compare("fresh_fingerprint_mismatch.json")
        self.assertEqual(proc.returncode, 0, proc.stdout)
        self.assertIn("SKIP", proc.stdout)
        self.assertIn("num_cpus", proc.stdout)

    def test_fingerprint_mismatch_fails_when_strict(self):
        proc = run_compare("fresh_fingerprint_mismatch.json",
                           "--strict-fingerprint")
        self.assertEqual(proc.returncode, 1, proc.stdout)
        self.assertIn("SKIP", proc.stdout)

    def test_missing_baseline_benchmark_fails(self):
        proc = run_compare("fresh_missing_benchmark.json")
        self.assertEqual(proc.returncode, 1, proc.stdout)
        self.assertIn("coverage loss", proc.stdout)


if __name__ == "__main__":
    unittest.main()
